(** Abstract syntax of the kernel IR.

    The IR models the CUDA subset needed by the paper's basic-DP template
    (Fig. 1): 1-D grids of 1-D blocks, global- and shared-memory accesses,
    atomics, intra-block synchronization, device-side kernel launches,
    device-side synchronization, device heap allocation, and the custom
    grid-wide barrier of Section IV.E.

    Variable occurrences carry a mutable [slot]; {!Kernel.finalize} resolves
    every occurrence to a dense frame index so the interpreter never hashes
    names.  Transformations that move subtrees between kernels must
    deep-copy them ({!copy_stmt}) so slot resolution cannot alias.

    The types are exposed concretely: the rewriter, the consolidation
    transforms, the simulator back ends and the static checker all pattern
    match on them.  Code outside [lib/kir] should build nodes through
    {!Build} or this module's smart constructors ({!var}, {!param}) so
    every [var] cell starts unresolved. *)

type ty = Tint | Tfloat | Tptr_int | Tptr_float

type var = { name : string; mutable slot : int }

(** A fresh, unresolved variable cell ([slot = -1]). *)
val var : string -> var

type special =
  | Thread_idx  (** threadIdx.x *)
  | Block_idx  (** blockIdx.x *)
  | Block_dim  (** blockDim.x *)
  | Grid_dim  (** gridDim.x *)
  | Lane_id  (** threadIdx.x mod warpSize *)
  | Warp_id  (** threadIdx.x / warpSize, within the block *)
  | Warp_size

type unop = Neg | Not | To_float | To_int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Min | Max
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge
  | Shl | Shr | Bit_and | Bit_or | Bit_xor

type atomic_op = Aadd | Amin | Amax | Aexch | Acas

type expr =
  | Const of Value.t
  | Var of var
  | Special of special
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Load of expr * expr  (** global load: buffer expression, index *)
  | Shared_load of string * expr
  | Buf_len of expr  (** element count of a buffer *)

(** Scope at which a device-heap allocation is performed (one buffer per
    warp / per block / per grid); the paper's consolidation buffers. *)
type alloc_scope = Per_warp | Per_block | Per_grid

type stmt =
  | Let of var * expr
  | Store of expr * expr * expr  (** buffer, index, value *)
  | Shared_store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of var * expr * expr * stmt list
      (** [For (v, lo, hi, body)]: v from lo while v < hi, step 1 *)
  | Syncthreads
  | Device_sync
      (** cudaDeviceSynchronize: the block waits for children it launched *)
  | Atomic of {
      op : atomic_op;
      buf : expr;
      idx : expr;
      operand : expr;
      compare : expr option;  (** for CAS *)
      old : var option;  (** binds the pre-update value *)
    }
  | Launch of launch
  | Malloc of {
      dst : var;
      count : expr;
      scope : alloc_scope;
      mutable site : int;  (** unique id, set by {!Kernel.finalize} *)
    }  (** device-heap allocation of an int buffer, serviced by the
           allocator selected for the run *)
  | Free of expr
      (** release a [Malloc]ed buffer back to the allocator (cost only;
          simulated buffers are reclaimed by the GC) *)
  | Grid_barrier
      (** custom global barrier (Section IV.E): every block arrives; all
          blocks except the last to arrive exit the kernel; the last block
          continues, and only after every block has arrived *)
  | Return  (** this thread exits the kernel *)

and launch = {
  callee : string;
  grid : expr;
  block : expr;
  args : expr list;
  pragma : Pragma.t option;  (** [#pragma dp] annotation, if any *)
}

type param = { pname : string; ptype : ty; pvar : var }

(** Parameter with a fresh variable cell; [ty] defaults to {!Tint}. *)
val param : ?ty:ty -> string -> param

(** {2 Deep copy}

    Fresh [var] cells so slots resolve independently. *)

val copy_expr : expr -> expr
val copy_stmt : stmt -> stmt
val copy_block : stmt list -> stmt list

(** {2 Traversals used by analyses} *)

(** Pre-order visit of an expression and all its subexpressions. *)
val iter_expr : (expr -> unit) -> expr -> unit

(** Pre-order visit of a statement tree: [on_stmt] on every statement,
    [on_expr] on every (sub)expression it contains. *)
val iter_stmt : on_stmt:(stmt -> unit) -> on_expr:(expr -> unit) -> stmt -> unit

val iter_block :
  on_stmt:(stmt -> unit) -> on_expr:(expr -> unit) -> stmt list -> unit

(** All variables defined or used in a block, in first-occurrence order:
    for each distinct name, the list of [var] cells bearing it. *)
val collect_vars : param list -> stmt list -> var list list

(** Does a block (transitively) contain [Syncthreads]?  Such subtrees must
    execute block-uniformly. *)
val has_syncthreads_block : stmt list -> bool

val has_syncthreads : stmt -> bool

(** Must a statement be executed block-uniformly (all warps in lockstep at
    the statement level)?  True for [Syncthreads] and [Grid_barrier] and
    for control flow containing them; the interpreter checks that the
    conditions of such control flow are uniform across the block, which is
    the same legality rule CUDA imposes on [__syncthreads]. *)
val needs_block_uniform : stmt -> bool

(** All [Launch] nodes in a block, in syntactic order. *)
val collect_launches : stmt list -> launch list
