(** Kernels and programs.

    A kernel owns its parameter list, shared-memory declarations and body.
    {!finalize} resolves every variable occurrence to a dense frame slot
    (the interpreter indexes per-lane frames by slot, never by name),
    numbers [Malloc] sites so per-grid allocations can be memoized, and
    caches the {!Typing} inference consumed by the compiled fast path.

    The record is exposed concretely: the simulator reads [nslots],
    [nsites] and [typing] directly, and the transforms and checker walk
    [params], [shared] and [body]. *)

type t = {
  kname : string;
  params : Ast.param list;
  shared : (string * int) list;  (** shared arrays: name, element count *)
  body : Ast.stmt list;
  line : int;  (** source line of the definition; 0 when built in memory *)
  mutable nslots : int;  (** -1 until finalized *)
  mutable nsites : int;  (** number of Malloc sites; -1 until finalized *)
  mutable typing : Typing.t option;
      (** slot-type inference result, cached by [finalize]; consumed by the
          simulator's compiled fast path *)
}

exception Invalid_kernel of string

(** @raise Invalid_kernel on duplicate parameter names. *)
val make :
  name:string ->
  ?params:Ast.param list ->
  ?shared:(string * int) list ->
  ?line:int ->
  Ast.stmt list ->
  t

(** Hook run on every kernel at the end of {!finalize}.  [Dpc_check]
    installs its strict verifier here so that every finalized kernel is
    statically vetted before it can reach the interpreter; the default is
    a no-op.  The hook may raise to reject the kernel.

    The hook is {e domain-local}: {!set_finalize_check} affects only the
    calling domain.  Executors that fan work out to other domains must
    install it inside each worker — installing it before spawning vets
    nothing the workers finalize. *)
val finalize_check : unit -> t -> unit

val set_finalize_check : (t -> unit) -> unit

(** Resolve variable slots and number allocation sites.  Idempotent and a
    no-op on an already-finalized kernel, so finalized programs are
    immutable from then on and safe to share read-only across sessions
    and domains (the engine's compiled-kernel cache relies on this).
    Must be called (via {!Program.finalize}) before interpretation.  Runs
    {!finalize_check} last (on the first call only). *)
val finalize : t -> unit

val is_finalized : t -> bool

(** Frame slots of the parameters, in declaration order.
    @raise Invalid_kernel if the kernel is not finalized. *)
val param_slots : t -> int list

type kernel = t

(** A program is a set of kernels addressable by name (device-side launches
    resolve callees here). *)
module Program : sig
  type t

  val create : unit -> t

  (** @raise Invalid_kernel on duplicate kernel names. *)
  val add : t -> kernel -> unit

  (** @raise Invalid_kernel when absent. *)
  val find : t -> string -> kernel

  val find_opt : t -> string -> kernel option
  val mem : t -> string -> bool

  (** All kernels, sorted by name. *)
  val kernels : t -> kernel list

  val finalize : t -> unit
end
