(** Deep-copying AST rewriter with hooks.

    The consolidation transforms are expressed as rewrites: substitute
    special registers (e.g. [blockIdx.x -> 0] when inlining a solo-block
    child), replace launch statements with buffer insertions, or drop
    statements.  The rewriter always returns fresh [var] cells (like
    {!Ast.copy_stmt}) so the output can be finalized independently. *)

type hooks = {
  special : Ast.special -> Ast.expr option;
      (** replace a special register by an expression *)
  launch : Ast.launch -> Ast.stmt list option;
      (** replace a launch statement (the replacement is NOT rewritten) *)
  stmt : Ast.stmt -> Ast.stmt list option;
      (** replace any other statement before recursion (the replacement is
          NOT rewritten); applied before the structural walk *)
}

(** Hooks that rewrite nothing: a pure deep copy. *)
val no_hooks : hooks

val rw_expr : hooks -> Ast.expr -> Ast.expr
val rw_stmt : hooks -> Ast.stmt -> Ast.stmt list
val rw_block : hooks -> Ast.stmt list -> Ast.stmt list

(** Substitute special registers throughout a block (deep copy). *)
val subst_specials :
  (Ast.special -> Ast.expr option) -> Ast.stmt list -> Ast.stmt list

(** Variables read by a block before being defined in it, excluding the
    given bound names.  Used to check the postwork self-containment rule. *)
val free_reads : bound:string list -> Ast.stmt list -> string list
