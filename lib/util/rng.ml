(** Deterministic pseudo-random number generation.

    All synthetic datasets in this repository are generated from explicit
    seeds so that every experiment is reproducible bit-for-bit.  We use
    SplitMix64, which is tiny, fast and has excellent statistical quality
    for non-cryptographic use. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [bits t] returns 62 uniformly random non-negative bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(** [float t] is uniform in [\[0, 1)]. *)
let float t = Float.of_int (bits t) /. 0x1p62

let bool t = bits t land 1 = 1

(** Power-law sample in [\[lo, hi\]] with exponent [alpha > 0]: heavier
    [alpha] gives a heavier head (small values more likely). *)
let power_law t ~lo ~hi ~alpha =
  if hi < lo then invalid_arg "Rng.power_law: empty range";
  let u = float t in
  let lo_f = Float.of_int lo and hi_f = Float.of_int (hi + 1) in
  let e = 1.0 -. alpha in
  let v =
    if Float.abs e < 1e-9 then lo_f *. ((hi_f /. lo_f) ** u)
    else ((hi_f ** e -. lo_f ** e) *. u +. (lo_f ** e)) ** (1.0 /. e)
  in
  Int.max lo (Int.min hi (Float.to_int v))

(** Fisher-Yates shuffle in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [split t] derives an independent generator (for parallel streams). *)
let split t = { state = next_int64 t }
