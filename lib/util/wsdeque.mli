(** Per-worker double-ended work queue for the stealing scheduler.

    One deque belongs to one domain at a time (its {e owner}); every
    other domain is a potential {e thief}.  The owner works at the
    bottom end ([push_bottom] / [pop_bottom]); thieves take from the top
    end ([steal_top]).  This is a lock-free Chase–Lev deque: owner
    operations are plain loads/stores of the owner's end plus one CAS
    race on the very last element, thieves claim elements by CAS — no
    mutex, so a preempted worker can never block another one (the pool
    oversubscribes domains over cores, where lock convoys would
    otherwise show up as tail latency).

    Ownership may be handed off between domains across a happens-before
    edge (the pool seeds every deque in the submitting domain before
    [Domain.spawn]ing the workers that own them). *)

type 'a t

(** An empty deque.  [capacity] pre-sizes the ring (it grows on demand). *)
val create : ?capacity:int -> unit -> 'a t

(** Owner end: push under the bottom of the deque.  Owner-only (at most
    one domain may push or pop concurrently; see the handoff note
    above). *)
val push_bottom : 'a t -> 'a -> unit

(** Owner end: take back the most recently pushed element.
    [None] when empty.  Owner-only. *)
val pop_bottom : 'a t -> 'a option

(** Thief end: take the oldest element, from any domain.  [None] means
    {e empty}, never a lost race (lost CAS races retry internally) —
    which is final for seeded (non-spawning) workloads, since only the
    owner adds elements and the pool seeds every deque before workers
    start. *)
val steal_top : 'a t -> 'a option

(** Snapshot size; racing operations may change it immediately. *)
val length : 'a t -> int

val is_empty : 'a t -> bool
