(** Plain-text table rendering for the experiment harness.  Every figure
    and table of the paper is re-emitted as one of these. *)

type align = Left | Right

type t

(** [create ~title ~headers ?aligns ()] makes an empty table.  [aligns]
    defaults to right-aligned everywhere and must match [headers] in
    length when given. *)
val create : title:string -> headers:string list -> ?aligns:align list
  -> unit -> t

(** @raise Invalid_argument when the row arity differs from the headers. *)
val add_row : t -> string list -> unit

(** Rows in insertion order. *)
val rows : t -> string list list

val title : t -> string
val headers : t -> string list

(** Formatting helpers used across the experiment tables. *)
val fmt_float : ?digits:int -> float -> string

val fmt_ratio : float -> string
val fmt_pct : float -> string
val fmt_int : int -> string

(** Render with ASCII borders (survives any log file). *)
val render : t -> string

val print : t -> unit
