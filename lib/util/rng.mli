(** Deterministic pseudo-random number generation (SplitMix64).

    Every synthetic dataset in this repository is generated from an
    explicit seed, so all experiments are reproducible bit-for-bit. *)

type t

(** [create seed] returns a generator whose stream is a pure function of
    [seed]. *)
val create : int -> t

(** Independent copy: advancing one does not affect the other. *)
val copy : t -> t

(** 62 uniformly random non-negative bits. *)
val bits : t -> int

(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in : t -> int -> int -> int

(** Uniform in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** Power-law sample in [\[lo, hi\]]; larger [alpha] makes small values
    more likely (heavier head). *)
val power_law : t -> lo:int -> hi:int -> alpha:float -> int

(** Fisher-Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit

(** Derive an independent generator (for parallel streams). *)
val split : t -> t
