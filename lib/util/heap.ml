(** Binary min-heap keyed by float priority, with a sequence number as a
    tie-breaker so equal-priority items pop in insertion order (the event
    queue of the timing simulator needs deterministic ordering). *)

type 'a entry = { prio : float; seq : int; v : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let length t = t.len

let is_empty t = t.len = 0

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio v =
  let e = { prio; seq = t.next_seq; v } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then begin
    let cap = Int.max 16 (2 * t.len) in
    let data = Array.make cap e in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (top.prio, top.v)
  end

let peek_prio t = if t.len = 0 then None else Some t.data.(0).prio
