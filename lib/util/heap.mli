(** Binary min-heap keyed by float priority.

    Equal-priority items pop in insertion order (a sequence number breaks
    ties), which keeps the timing simulator's event processing
    deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

(** Smallest priority first; [None] when empty. *)
val pop_min : 'a t -> (float * 'a) option

(** Priority of the next element to pop, without popping. *)
val peek_prio : 'a t -> float option
