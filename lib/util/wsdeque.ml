(** Lock-free Chase–Lev deque (see the interface for the owner/thief
    contract).

    Layout: the ring is a power-of-two array; logical indices grow
    upward from [top] (oldest, thief end) to [bottom] (newest, owner
    end), with element [i] stored at [arr.(i land (len - 1))].
    [top < bottom] iff the deque is non-empty.

    This is the canonical Chase–Lev protocol.  OCaml's [Atomic]
    operations are sequentially consistent, which subsumes every fence
    the published algorithm needs, so the port is direct:

    - The owner pushes and pops at [bottom] with plain loads/stores of
      its own end; the only synchronization it ever needs is on the
      {e last} element, where it races thieves with a CAS on [top].
    - Thieves read [top], check against [bottom], read the slot, and
      claim it by CAS on [top].  A failed CAS means another party took
      the element first; the thief retries (that party made progress,
      so the retry loop is lock-free).

    The ring is published through an [Atomic] so growth (owner-only,
    like [push_bottom]) swaps in the bigger copy atomically.  A thief
    holding the old ring is still correct: growth copies elements to
    the same logical indices, the old ring's live slots are never
    overwritten afterwards (the owner only writes through the new
    ring), and a stale [top] fails the CAS. *)

type 'a t = {
  top : int Atomic.t;  (* index of the oldest element *)
  bottom : int Atomic.t;  (* one past the newest element *)
  arr : 'a option array Atomic.t;  (* length always a power of two *)
}

let create ?(capacity = 64) () =
  let cap = max 8 capacity in
  (* Round up to a power of two so masking replaces modulo. *)
  let cap =
    let c = ref 8 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    arr = Atomic.make (Array.make cap None);
  }

let grow d b t =
  let old = Atomic.get d.arr in
  let nbuf = Array.make (2 * Array.length old) None in
  let m = Array.length old - 1 and nm = Array.length nbuf - 1 in
  for i = t to b - 1 do
    nbuf.(i land nm) <- old.(i land m)
  done;
  Atomic.set d.arr nbuf

let push_bottom d x =
  let b = Atomic.get d.bottom and t = Atomic.get d.top in
  let a = Atomic.get d.arr in
  let a =
    if b - t >= Array.length a then begin
      grow d b t;
      Atomic.get d.arr
    end
    else a
  in
  a.(b land (Array.length a - 1)) <- Some x;
  Atomic.set d.bottom (b + 1)

let pop_bottom d =
  let b = Atomic.get d.bottom - 1 in
  (* Claim the bottom slot first; the SC store orders against the [top]
     load below, so a concurrent thief either sees our claim or we see
     its increment — the single-element race then goes through the CAS. *)
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty: undo the claim. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let a = Atomic.get d.arr in
    let i = b land (Array.length a - 1) in
    let x = a.(i) in
    if b > t then begin
      a.(i) <- None;
      x
    end
    else begin
      (* Last element: race any thief for it via [top]. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        a.(i) <- None;
        x
      end
      else None
    end
  end

let rec steal_top d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let a = Atomic.get d.arr in
    let x = a.(t land (Array.length a - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then x
    else
      (* Lost the race to another thief (or the owner's last-element
         pop) — they made progress, so retrying is lock-free. *)
      steal_top d
  end

let length d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

let is_empty d = length d = 0
