(** Domain-based worker pool for independent simulation fan-out.

    The experiment harness replays dozens of fully independent
    simulations (app x variant x allocator/policy cells); this pool runs
    them across OCaml 5 domains.  Results keep the submission order, so a
    table assembled from [parallel_map] output is byte-identical to the
    serial run regardless of the worker count.

    Tasks must be self-contained: each should build its own
    [Dpc_gpu.Memory] / simulator instance and derive any randomness from
    an explicit per-task seed (or an {!Rng.split} stream), never from
    state shared with other tasks. *)

type t

(** [create ~jobs] returns a pool running at most [jobs] tasks
    concurrently.  [jobs = 1] is the serial path (no domains are
    spawned); raises [Invalid_argument] if [jobs < 1]. *)
val create : jobs:int -> t

(** Concurrency bound the pool was created with. *)
val jobs : t -> int

(** [Domain.recommended_domain_count () - 1], clamped to at least 1:
    leave one core for the submitting domain's own work. *)
val default_jobs : unit -> int

(** [parallel_map t f xs] computes [List.map f xs] using up to [jobs]
    domains (the calling domain participates as a worker).  Results are
    returned in submission order.  If any task raises, workers stop
    claiming further tasks and the lowest-indexed exception among the
    tasks that failed is re-raised with its backtrace (deterministic
    whenever a single task is at fault). *)
val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_iter t f xs] is [parallel_map] for side-effecting tasks;
    same ordering and exception guarantees. *)
val parallel_iter : t -> ('a -> unit) -> 'a list -> unit
