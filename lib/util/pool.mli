(** Domain-based worker pool for independent simulation fan-out.

    The experiment harness replays hundreds to thousands of fully
    independent simulations (app x variant x allocator/policy cells, and
    1000-scenario sweeps); this pool runs them across OCaml 5 domains.
    Results keep the submission order, so a table assembled from
    [parallel_map] output is byte-identical to the serial run regardless
    of the worker count {e and} of the scheduler.

    Two dispatch schedulers are available:

    - {!Shared}: workers claim task indices from one shared atomic
      counter, in submission order.  Cheap and fair for uniform tasks,
      but the submission order decides when expensive tasks start — a
      sweep that lists its big runs last parks them behind every small
      one, and the last-claimed big task straggles alone.
    - {!Steal}: per-worker deques ({!Wsdeque}) seeded longest-first from
      a caller-supplied cost estimate, with round-robin victim selection
      when a worker's own deque runs dry.  Expensive tasks start first
      (LPT order), and idle workers steal queued work from busy ones, so
      skewed sweeps finish near the greedy-optimal makespan.

    Both schedulers run the same task set to completion and return
    results in submission order; only wall-clock scheduling differs.

    Tasks must be self-contained: each should build its own
    [Dpc_gpu.Memory] / simulator instance and derive any randomness from
    an explicit per-task seed (or an {!Rng.split} stream), never from
    state shared with other tasks. *)

type t

(** Dispatch scheduler: shared-counter submission order, or per-worker
    deques with work stealing (see the module description). *)
type sched = Shared | Steal

val sched_to_string : sched -> string

(** Parses ["shared"] / ["steal"] (case-insensitive).
    @raise Invalid_argument otherwise. *)
val sched_of_string : string -> sched

(** [create ~jobs ()] returns a pool running at most [jobs] tasks
    concurrently.  [jobs = 1] is the serial path (no domains are
    spawned); raises [Invalid_argument] if [jobs < 1].  [sched] picks the
    dispatch scheduler (default {!Shared}). *)
val create : ?sched:sched -> jobs:int -> unit -> t

(** Concurrency bound the pool was created with. *)
val jobs : t -> int

val sched : t -> sched

(** Number of tasks taken from another worker's deque during the most
    recent [parallel_map]/[parallel_iter] on this pool.  Always [0] for
    the {!Shared} scheduler and the serial path.  Read it after the call
    returns (it is written by the submitting domain on completion). *)
val last_steals : t -> int

(** [Domain.recommended_domain_count () - 1], clamped to at least 1:
    leave one core for the submitting domain's own work. *)
val default_jobs : unit -> int

(** [parallel_map t f xs] computes [List.map f xs] using up to [jobs]
    domains (the calling domain participates as a worker).  Results are
    returned in submission order.

    [cost] estimates each task's relative duration; the {!Steal}
    scheduler seeds its deques longest-first from it (ties keep
    submission order).  The {!Shared} scheduler and the serial path
    ignore it.  Estimates only steer scheduling — they never change
    results.

    {b Failure.}  If any task raises, workers stop claiming further tasks
    (tasks already claimed run to completion), and the error of the
    {e lowest-indexed failing task} is re-raised with its backtrace.
    This is deterministic even when several tasks fail concurrently: any
    task below the lowest recorded failure that was never claimed is
    executed (serially, in the submitting domain) before reporting, so
    the reported index never depends on claim timing.  Like the serial
    path, every task below the reported one has run; unlike the serial
    path, some tasks above it may also have run. *)
val parallel_map : ?cost:('a -> float) -> t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_iter t f xs] is [parallel_map] for side-effecting tasks;
    same ordering and exception guarantees. *)
val parallel_iter : ?cost:('a -> float) -> t -> ('a -> unit) -> 'a list -> unit
