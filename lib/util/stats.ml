(** Small statistics helpers used by the metrics and the experiment
    harness (averages across benchmarks, geometric means for speedups). *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

(** Geometric mean; the right average for ratios such as speedups. *)
let geomean = function
  | [] -> nan
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. Float.log x)
        0.0 xs
    in
    Float.exp (log_sum /. Float.of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = Float.of_int (List.length xs) in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    Float.sqrt (ss /. (n -. 1.0))

(** Histogram of integer samples into [buckets] equal-width bins over
    [\[lo, hi\]].  Both edges are inclusive: samples equal to [hi] land in
    the last bucket (every bucket is half-open except the top one). *)
let histogram ~buckets ~lo ~hi samples =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.histogram";
  let counts = Array.make buckets 0 in
  let width = Float.of_int (hi - lo) /. Float.of_int buckets in
  List.iter
    (fun s ->
      if s >= lo && s <= hi then begin
        let b = Float.to_int (Float.of_int (s - lo) /. width) in
        let b = Int.min (buckets - 1) b in
        counts.(b) <- counts.(b) + 1
      end)
    samples;
  counts
