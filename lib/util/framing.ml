(** Incremental newline-delimited frame splitter.

    The serve protocol ([dpc-serve-v1]) frames every message as one JSON
    document per line.  A socket reader hands whatever byte chunks
    [read] produced to {!feed} and gets back the complete frames they
    closed, in order; a partial trailing line stays buffered until the
    next chunk completes it.  The splitter never inspects frame
    contents, so it works for any line-framed text protocol.

    Frames are stripped of their ['\n'] terminator; a ['\r'] immediately
    before it is dropped too, so CRLF peers work unchanged.  Empty lines
    are delivered as [""] — the protocol layer decides whether to ignore
    them. *)

type t = {
  buf : Buffer.t;  (** bytes of the current, not-yet-terminated frame *)
}

let create () = { buf = Buffer.create 256 }

(** Bytes buffered for the incomplete current frame. *)
let pending t = Buffer.length t.buf

let chop_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(** [feed t bytes ~len] consumes [len] bytes from the front of [bytes]
    and returns the frames they completed, oldest first. *)
let feed t (chunk : bytes) ~len =
  let frames = ref [] in
  for i = 0 to len - 1 do
    match Bytes.get chunk i with
    | '\n' ->
      frames := chop_cr (Buffer.contents t.buf) :: !frames;
      Buffer.clear t.buf
    | c -> Buffer.add_char t.buf c
  done;
  List.rev !frames

(** [feed_string t s] is {!feed} over a whole string (tests, in-process
    pipes). *)
let feed_string t s = feed t (Bytes.unsafe_of_string s) ~len:(String.length s)
