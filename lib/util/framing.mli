(** Incremental newline-delimited frame splitter for line-framed text
    protocols (the serve layer's [dpc-serve-v1] framing).

    Feed raw byte chunks as they arrive from a socket; get back the
    complete frames they closed, in arrival order, with the ['\n'] (and
    an optional preceding ['\r']) stripped.  A partial trailing line
    stays buffered across calls. *)

type t

val create : unit -> t

(** Bytes buffered for the incomplete current frame. *)
val pending : t -> int

(** [feed t chunk ~len] consumes the first [len] bytes of [chunk] and
    returns the frames they completed, oldest first. *)
val feed : t -> bytes -> len:int -> string list

(** {!feed} over a whole string. *)
val feed_string : t -> string -> string list
