(** Domain-based worker pool (see the interface for the contract).

    Implementation notes: tasks are indexed into an array and workers
    claim indices from a single [Atomic] counter, so scheduling is a
    work-stealing-free bump — cheap, and fair enough for coarse tasks
    (each task here is a whole simulation).  Worker domains are spawned
    per call rather than kept resident: calls are rare and long-lived,
    and per-call spawning keeps nested/overlapping pools from ever
    exceeding the machine's domain budget between calls. *)

type t = { jobs : int }

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let jobs t = t.jobs

let default_jobs () = Int.max 1 (Domain.recommended_domain_count () - 1)

let parallel_map (type a b) t (f : a -> b) (xs : a list) : b list =
  match xs with
  | [] -> []
  | _ when t.jobs = 1 -> List.map f xs
  | _ ->
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let results : b option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failed then continue := false
        else
          match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
            Atomic.set failed true
      done
    in
    let spawned = Int.min t.jobs n - 1 in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    if Atomic.get failed then begin
      (* Deterministic failure: re-raise the lowest-indexed error. *)
      let first = ref None in
      for i = n - 1 downto 0 do
        match errors.(i) with Some _ as e -> first := e | None -> ()
      done;
      match !first with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> assert false
    end;
    List.init n (fun i ->
        match results.(i) with Some v -> v | None -> assert false)

let parallel_iter t f xs = ignore (parallel_map t f xs)
