(** Domain-based worker pool (see the interface for the contract).

    Implementation notes.  Tasks are indexed into an array; [results] /
    [errors] cells are written by exactly one worker each and read after
    [Domain.join], so no cell needs to be atomic.  Worker domains are
    spawned per call rather than kept resident: calls are rare and
    long-lived, and per-call spawning keeps nested/overlapping pools from
    ever exceeding the machine's domain budget between calls.

    [Shared] dispatch is the historical single-bump scheduler: one
    [Atomic] counter, claims in submission order.

    [Steal] dispatch seeds one {!Wsdeque} per worker.  Task indices are
    sorted by descending cost estimate (stable: ties keep submission
    order) and dealt round-robin, pushed so that each deque's {e bottom}
    — the owner's end — holds its most expensive task: owners drain their
    deque longest-first (LPT), and a worker whose deque runs dry steals
    from its neighbours' {e top} ends (their cheapest queued work,
    round-robin from its own id), which fills idle tails without
    disturbing the victims' cost order.  Nobody pushes after seeding, so
    an empty sweep of all deques is a final termination condition. *)

type sched = Shared | Steal

let sched_to_string = function Shared -> "shared" | Steal -> "steal"

let sched_of_string s =
  match String.lowercase_ascii s with
  | "shared" -> Shared
  | "steal" | "work-steal" | "work-stealing" -> Steal
  | other ->
    invalid_arg
      (Printf.sprintf "bad pool scheduler %S (expected shared or steal)"
         other)

type t = { jobs : int; sched : sched; mutable last_steals : int }

let create ?(sched = Shared) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs; sched; last_steals = 0 }

let jobs t = t.jobs
let sched t = t.sched
let last_steals t = t.last_steals

let default_jobs () = Int.max 1 (Domain.recommended_domain_count () - 1)

(* One task, recorded: a cell is written before [failed] is raised so the
   post-join sweep sees every claimed task's fate. *)
let run_task (type a b) (f : a -> b) tasks (results : b option array)
    (errors : (exn * Printexc.raw_backtrace) option array) failed i =
  match f tasks.(i) with
  | v -> results.(i) <- Some v
  | exception e ->
    errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
    Atomic.set failed true

(* Deterministic failure report.  [failed] is set, so at least one error
   cell is populated.  Workers fail fast (they stop claiming once
   [failed] is set), which means a task with a {e lower} index than the
   lowest recorded failure may never have been claimed — and whether it
   was claimed depends on timing.  To make the reported error independent
   of that timing, execute every unclaimed task below the lowest recorded
   failure, in index order, in the calling domain: the first failure
   found this way (or the recorded one, if they all succeed) is the
   lowest-indexed failing task, full stop. *)
let reraise_lowest (type a b) (f : a -> b) tasks (results : b option array)
    (errors : (exn * Printexc.raw_backtrace) option array) n =
  let lowest = ref (n - 1) in
  for i = n - 1 downto 0 do
    if errors.(i) <> None then lowest := i
  done;
  let i = ref 0 in
  while !i < !lowest do
    (if results.(!i) = None && errors.(!i) = None then
       match f tasks.(!i) with
       | v -> results.(!i) <- Some v
       | exception e ->
         errors.(!i) <- Some (e, Printexc.get_raw_backtrace ());
         lowest := !i);
    incr i
  done;
  match errors.(!lowest) with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> assert false

(* --- shared-counter dispatch --------------------------------------------- *)

let shared_worker f tasks results errors failed next n _me () =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add next 1 in
    if i >= n || Atomic.get failed then continue := false
    else run_task f tasks results errors failed i
  done

(* --- work-stealing dispatch ---------------------------------------------- *)

(* Deal task indices over [w] deques, most expensive first.  Worker [k]'s
   own deque ends up in descending-cost order bottom-to-top... backwards:
   we push each worker's share cheapest-first, so [pop_bottom] (the
   owner's end) yields its most expensive remaining task and [steal_top]
   yields its cheapest. *)
let seed_deques ?cost tasks n w =
  let order = Array.init n Fun.id in
  (match cost with
  | None -> ()
  | Some c ->
    let costs = Array.map (fun x -> c x) tasks in
    (* Stable descending sort: ties keep submission order. *)
    let cmp a b =
      match Float.compare costs.(b) costs.(a) with
      | 0 -> Int.compare a b
      | d -> d
    in
    Array.sort cmp order);
  let deques =
    Array.init w (fun _ -> Wsdeque.create ~capacity:(2 + (n / w)) ())
  in
  (* order.(k) goes to deque (k mod w); walk each share in reverse so the
     share's most expensive index is pushed last (= sits at the bottom). *)
  for k = n - 1 downto 0 do
    Wsdeque.push_bottom deques.(k mod w) order.(k)
  done;
  deques

let stealing_worker f tasks results errors failed deques steals w me () =
  let continue = ref true in
  while !continue do
    if Atomic.get failed then continue := false
    else
      match Wsdeque.pop_bottom deques.(me) with
      | Some i -> run_task f tasks results errors failed i
      | None ->
        (* Own deque dry: sweep the other deques round-robin from our
           id.  Since nobody pushes after seeding, finding them all
           empty means no queued work is left anywhere — stop. *)
        let stolen = ref None in
        let v = ref 1 in
        while !stolen = None && !v < w do
          stolen := Wsdeque.steal_top deques.((me + !v) mod w);
          incr v
        done;
        (match !stolen with
        | Some i ->
          Atomic.incr steals;
          run_task f tasks results errors failed i
        | None -> continue := false)
  done

(* --- entry points ---------------------------------------------------------- *)

let parallel_map (type a b) ?cost t (f : a -> b) (xs : a list) : b list =
  t.last_steals <- 0;
  match xs with
  | [] -> []
  | _ when t.jobs = 1 -> List.map f xs
  | _ ->
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let results : b option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let failed = Atomic.make false in
    let w = Int.min t.jobs n in
    let steals = Atomic.make 0 in
    let worker =
      match t.sched with
      | Shared ->
        let next = Atomic.make 0 in
        shared_worker f tasks results errors failed next n
      | Steal ->
        let deques = seed_deques ?cost tasks n w in
        stealing_worker f tasks results errors failed deques steals w
    in
    let domains =
      Array.init (w - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains;
    t.last_steals <- Atomic.get steals;
    if Atomic.get failed then reraise_lowest f tasks results errors n;
    List.init n (fun i ->
        match results.(i) with Some v -> v | None -> assert false)

let parallel_iter ?cost t f xs = ignore (parallel_map ?cost t f xs)
