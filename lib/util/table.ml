(** Plain-text table rendering for the experiment harness.  Every figure
    and table of the paper is re-emitted as one of these tables. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~headers ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- cells :: t.rows

let rows t = List.rev t.rows

let title t = t.title

let headers t = t.headers

let fmt_float ?(digits = 2) v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" digits v

let fmt_ratio v = fmt_float ~digits:2 v

let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_int = string_of_int

(** Render with unicode-free ASCII borders so output survives any log. *)
let render t =
  let all = t.headers :: rows t in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- Int.max widths.(i) (String.length c)) row)
    all;
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i c ->
          let align = List.nth t.aligns i in
          pad align widths.(i) c)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "=== %s ===\n" t.title);
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) (rows t);
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)
