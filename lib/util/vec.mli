(** Growable arrays (the stdlib gains [Dynarray] only in OCaml 5.2).

    The [dummy] element fills unused capacity; it is never observable
    through the API. *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Remove all elements (capacity is retained). *)
val clear : 'a t -> unit

val push : 'a t -> 'a -> unit

(** @raise Invalid_argument on out-of-bounds access. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument on out-of-bounds access. *)
val set : 'a t -> int -> 'a -> unit

(** Remove and return the last element.
    @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : dummy:'a -> 'a array -> 'a t
