(** Session-local online cost learning.

    {!Scenario.cost_estimate} is a static model fit from committed
    profile data; it seeds the {!Dpc_util.Pool.Steal} scheduler's deques
    longest-first.  Once a session has actually executed a scenario,
    its measured wall clock is a strictly better predictor for the next
    run of the same scenario — a second sweep should seed from what the
    first sweep observed.

    The two quantities live in different units (static estimates are
    baseline-cycle units, observations are seconds), and a sweep
    usually mixes observed and never-seen scenarios, so raw values are
    not comparable.  The table therefore learns a single calibration
    ratio — the running sum of static estimates over the running sum of
    observed seconds, i.e. "estimate units per second" — and scores an
    observed scenario as [ema_seconds * calibration].  Observed and
    unobserved scenarios then rank on one scale: mis-calibration only
    shifts the observed population as a whole, while their relative
    order follows the measured times.

    Repeated observations of one key blend with an exponential moving
    average (alpha 1/2), so a one-off scheduling hiccup decays instead
    of sticking forever.

    All entry points are thread-safe (one mutex); estimates never
    change results, only the stealing scheduler's seeding order. *)

type t = {
  lock : Mutex.t;
  observed : (string, float) Hashtbl.t;  (** key -> EMA of seconds *)
  mutable sum_static : float;  (** static estimate mass of all records *)
  mutable sum_seconds : float;  (** observed seconds mass of all records *)
  mutable records : int;
}

let create () =
  {
    lock = Mutex.create ();
    observed = Hashtbl.create 64;
    sum_static = 0.;
    sum_seconds = 0.;
    records = 0;
  }

let ema_alpha = 0.5

(** Record one finished run: its scenario [key], the [static] estimate
    the run would have been seeded with, and its measured wall-clock
    [seconds].  Non-finite or non-positive durations are discarded (a
    clock glitch must not poison the table). *)
let record t ~key ~static ~seconds =
  if Float.is_finite seconds && seconds > 0. && Float.is_finite static then
    Mutex.protect t.lock (fun () ->
        let blended =
          match Hashtbl.find_opt t.observed key with
          | None -> seconds
          | Some prev -> ((1. -. ema_alpha) *. prev) +. (ema_alpha *. seconds)
        in
        Hashtbl.replace t.observed key blended;
        t.sum_static <- t.sum_static +. Float.max 0. static;
        t.sum_seconds <- t.sum_seconds +. seconds;
        t.records <- t.records + 1)

(** Number of distinct scenario keys with an observation. *)
let observations t =
  Mutex.protect t.lock (fun () -> Hashtbl.length t.observed)

(** Cost estimate for [key]: the calibrated observation when one exists,
    else the [static] fallback — both on the static model's scale. *)
let estimate t ~key ~static =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.observed key with
      | None -> static
      | Some seconds ->
        if t.sum_seconds > 0. then seconds *. (t.sum_static /. t.sum_seconds)
        else static)
