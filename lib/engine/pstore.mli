(** Persistent on-disk store for prepared programs: the cross-process
    side of the kernel cache.

    One file per prepared program under the store directory,
    content-addressed by the caller's key (the harness prep-key MD5
    digest, which folds in the interpreter tier and device config) with
    a format-version header (format tag + OCaml version + interpreter
    tier + device-config digest + payload digest + length) — a load for
    one tier or preset never accepts a file written for another, so
    mixed cache directories degrade to an ordinary re-prepare.  Writes
    are atomic (temp file +
    [Sys.rename]), so concurrent daemon/CLI writers never clobber each
    other and readers never observe partial files.  Every failure mode
    — stale format, truncation, corruption, I/O error — degrades to a
    miss; the store accelerates cold starts but is never a correctness
    dependency. *)

type t

(** Counters since {!create}; loads/stores that degraded to a miss or a
    no-op are the [_failures].  [verify_rejects] counts files that
    decoded cleanly but whose payload the {!create} [verify] hook
    refused. *)
type stats = {
  loads : int;
  load_failures : int;
  stores : int;
  store_failures : int;
  verify_rejects : int;
}

(** The on-disk format tag ([dpc-kcache-v3]); bump when the serialized
    KIR shape or the header layout changes. *)
val format_version : string

(** Open the store rooted at the given directory, creating it (parents
    included) when absent.  [verify] vets every successfully decoded
    payload before {!load} hands it out: [Error reason] (or an
    exception) rejects the file, counts a [verify_rejects], prints a
    diagnostic to stderr and degrades to an ordinary miss, so a corrupt,
    semantically stale or hand-edited [.prep] re-prepares instead of
    executing.  The header digest only guards accidental corruption;
    this hook is the trust boundary for everything past it.
    @raise Unix.Unix_error when the directory cannot be created. *)
val create :
  ?verify:(tier:string -> Dpc_apps.Harness.prep -> (unit, string) result) ->
  string ->
  t

val dir : t -> string
val stats : t -> stats

(** Serialize a prepared program under [key] for interpreter tier [tier]
    (a {!Dpc_sim.Interp.mode_to_string} tag) built under device config
    [cfgkey] (a {!Dpc_apps.Harness.cfg_digest} hex digest); both are
    stamped into the header.  [false] on any failure (never raises). *)
val store :
  t -> key:string -> tier:string -> cfgkey:string ->
  Dpc_apps.Harness.prep -> bool

(** Load the prepared program stored under [key] for interpreter tier
    [tier] and device config [cfgkey]; [None] when absent, stale,
    written for another tier or preset, corrupt or unreadable (never
    raises). *)
val load :
  t -> key:string -> tier:string -> cfgkey:string ->
  Dpc_apps.Harness.prep option
