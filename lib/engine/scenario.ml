(** First-class run descriptions.

    A scenario is everything that picks one simulated run: the app, the
    variant, the configuration policy, the allocator, the device config
    (a named preset plus per-field integer overrides), the problem scale
    and seed, the SMX scheduler, the interpreter back end, and any
    app-specific extras.  It is plain immutable data with stable string /
    JSON codecs, so experiment suites are declarative scenario lists, CLI
    flags parse into it, sweep files deserialize into it, and the engine's
    compiled-kernel cache keys off it.

    The canonical string form is a comma-separated [KEY=V] list in fixed
    field order — two structurally equal scenarios always print the same
    string, which is why {!key} and {!hash} are derived from it. *)

module Harness = Dpc_apps.Harness
module Registry = Dpc_apps.Registry
module Cfg = Dpc_gpu.Config
module Alloc = Dpc_alloc.Allocator
module Cs = Dpc.Config_select
module Json = Dpc_prof.Json

type t = {
  app : string;  (** canonical registry name *)
  variant : Harness.variant;
  policy : Cs.policy option;  (** [None]: the per-granularity default *)
  alloc : Alloc.kind;
  cfg_preset : string;  (** ["k20c"] or ["test-device"] *)
  cfg_overrides : (string * int) list;  (** sorted by field name *)
  scale : int option;  (** [None]: the app's documented default *)
  seed : int option;
  scheduler : Dpc_sim.Timing.scheduler;
  interp : Dpc_sim.Interp.mode option;  (** [None]: session default *)
  extras : (string * string) list;  (** app-specific knobs, sorted *)
}

(* --- device-config presets and overrides --------------------------------- *)

(* The registry lives with the presets themselves ({!Cfg.presets}) so
   every front end — scenarios, dpcc, experiments — rejects an unknown
   preset with the same authoritative list. *)
let cfg_preset_of_string s =
  match Cfg.preset_opt s with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "unknown device preset %S (have: %s)" s
         (String.concat ", " Cfg.preset_names))

(* Every integer field of Cfg.t, by name, with getter and setter — the
   surface [cfg.FIELD=N] overrides address (bench ablations sweep these).
   [name]/[clock_mhz] are deliberately not overridable. *)
let cfg_fields : (string * (Cfg.t -> int) * (Cfg.t -> int -> Cfg.t)) list =
  [
    ("num_smx", (fun c -> c.Cfg.num_smx),
     fun c v -> { c with Cfg.num_smx = v });
    ("warp_size", (fun c -> c.Cfg.warp_size),
     fun c v -> { c with Cfg.warp_size = v });
    ("max_warps_per_smx", (fun c -> c.Cfg.max_warps_per_smx),
     fun c v -> { c with Cfg.max_warps_per_smx = v });
    ("max_blocks_per_smx", (fun c -> c.Cfg.max_blocks_per_smx),
     fun c v -> { c with Cfg.max_blocks_per_smx = v });
    ("max_threads_per_block", (fun c -> c.Cfg.max_threads_per_block),
     fun c v -> { c with Cfg.max_threads_per_block = v });
    ("max_grid_blocks", (fun c -> c.Cfg.max_grid_blocks),
     fun c v -> { c with Cfg.max_grid_blocks = v });
    ("issue_rate", (fun c -> c.Cfg.issue_rate),
     fun c v -> { c with Cfg.issue_rate = v });
    ("max_concurrent_grids", (fun c -> c.Cfg.max_concurrent_grids),
     fun c v -> { c with Cfg.max_concurrent_grids = v });
    ("max_nesting_depth", (fun c -> c.Cfg.max_nesting_depth),
     fun c v -> { c with Cfg.max_nesting_depth = v });
    ("fixed_pool_capacity", (fun c -> c.Cfg.fixed_pool_capacity),
     fun c v -> { c with Cfg.fixed_pool_capacity = v });
    ("host_launch_latency", (fun c -> c.Cfg.host_launch_latency),
     fun c v -> { c with Cfg.host_launch_latency = v });
    ("device_launch_latency", (fun c -> c.Cfg.device_launch_latency),
     fun c v -> { c with Cfg.device_launch_latency = v });
    ("launch_issue_cycles", (fun c -> c.Cfg.launch_issue_cycles),
     fun c v -> { c with Cfg.launch_issue_cycles = v });
    ("launch_dram_transactions", (fun c -> c.Cfg.launch_dram_transactions),
     fun c v -> { c with Cfg.launch_dram_transactions = v });
    ("dispatch_interval", (fun c -> c.Cfg.dispatch_interval),
     fun c v -> { c with Cfg.dispatch_interval = v });
    ("virtual_dispatch_interval",
     (fun c -> c.Cfg.virtual_dispatch_interval),
     fun c v -> { c with Cfg.virtual_dispatch_interval = v });
    ("virtual_pool_penalty", (fun c -> c.Cfg.virtual_pool_penalty),
     fun c v -> { c with Cfg.virtual_pool_penalty = v });
    ("virtual_pool_dram", (fun c -> c.Cfg.virtual_pool_dram),
     fun c v -> { c with Cfg.virtual_pool_dram = v });
    ("sync_swap_cycles", (fun c -> c.Cfg.sync_swap_cycles),
     fun c v -> { c with Cfg.sync_swap_cycles = v });
    ("sync_swap_dram", (fun c -> c.Cfg.sync_swap_dram),
     fun c v -> { c with Cfg.sync_swap_dram = v });
    ("block_start_cycles", (fun c -> c.Cfg.block_start_cycles),
     fun c v -> { c with Cfg.block_start_cycles = v });
    ("alu_cycles", (fun c -> c.Cfg.alu_cycles),
     fun c v -> { c with Cfg.alu_cycles = v });
    ("mem_issue_cycles", (fun c -> c.Cfg.mem_issue_cycles),
     fun c v -> { c with Cfg.mem_issue_cycles = v });
    ("dram_transaction_cycles", (fun c -> c.Cfg.dram_transaction_cycles),
     fun c v -> { c with Cfg.dram_transaction_cycles = v });
    ("l2_hit_cycles", (fun c -> c.Cfg.l2_hit_cycles),
     fun c v -> { c with Cfg.l2_hit_cycles = v });
    ("atomic_cycles", (fun c -> c.Cfg.atomic_cycles),
     fun c v -> { c with Cfg.atomic_cycles = v });
    ("mem_segment_bytes", (fun c -> c.Cfg.mem_segment_bytes),
     fun c v -> { c with Cfg.mem_segment_bytes = v });
    ("l2_segments", (fun c -> c.Cfg.l2_segments),
     fun c v -> { c with Cfg.l2_segments = v });
    ("shared_banks", (fun c -> c.Cfg.shared_banks),
     fun c v -> { c with Cfg.shared_banks = v });
    ("bank_replay_cycles", (fun c -> c.Cfg.bank_replay_cycles),
     fun c v -> { c with Cfg.bank_replay_cycles = v });
    ("mshr_per_warp", (fun c -> c.Cfg.mshr_per_warp),
     fun c v -> { c with Cfg.mshr_per_warp = v });
    ("mshr_retire_per_access", (fun c -> c.Cfg.mshr_retire_per_access),
     fun c v -> { c with Cfg.mshr_retire_per_access = v });
    ("mshr_stall_cycles", (fun c -> c.Cfg.mshr_stall_cycles),
     fun c v -> { c with Cfg.mshr_stall_cycles = v });
    ("issue_per_warp", (fun c -> c.Cfg.issue_per_warp),
     fun c v -> { c with Cfg.issue_per_warp = v });
  ]

let cfg_field name =
  match
    List.find_opt (fun (n, _, _) -> n = name) cfg_fields
  with
  | Some f -> f
  | None ->
    invalid_arg
      (Printf.sprintf "unknown device-config field %S (have: %s)" name
         (String.concat ", " (List.map (fun (n, _, _) -> n) cfg_fields)))

(** The scenario's device config: preset with overrides applied, tagged
    with an override-bearing name so reports stay self-describing. *)
let resolve_cfg t =
  let base = cfg_preset_of_string t.cfg_preset in
  List.fold_left
    (fun c (name, v) ->
      let _, _, set = cfg_field name in
      set c v)
    base t.cfg_overrides

(* --- small codecs ---------------------------------------------------------- *)

let alloc_to_string = Alloc.kind_to_string

let alloc_of_string s =
  match String.lowercase_ascii s with
  | "default" -> Alloc.Default
  | "halloc" -> Alloc.Halloc
  | "pre-alloc" | "pool" -> Alloc.Pool
  | other ->
    invalid_arg
      (Printf.sprintf
         "bad allocator %S (expected default, halloc, or pre-alloc)" other)

let scheduler_to_string = function
  | Dpc_sim.Timing.Processor_sharing -> "ps"
  | Dpc_sim.Timing.Fcfs -> "fcfs"

let scheduler_of_string s =
  match String.lowercase_ascii s with
  | "ps" | "processor-sharing" -> Dpc_sim.Timing.Processor_sharing
  | "fcfs" -> Dpc_sim.Timing.Fcfs
  | other ->
    invalid_arg
      (Printf.sprintf "bad scheduler %S (expected ps or fcfs)" other)

let interp_to_string = Dpc_sim.Interp.mode_to_string

let interp_of_string s =
  match Dpc_sim.Interp.mode_of_string s with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "bad interp mode %S (expected compiled, bytecode, or ref)"
         s)

(* --- construction ---------------------------------------------------------- *)

let sort_pairs l =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l

let make ?policy ?(alloc = Alloc.Pool) ?(cfg = "k20c") ?(cfg_overrides = [])
    ?scale ?seed ?(scheduler = Dpc_sim.Timing.Processor_sharing) ?interp
    ?(extras = []) ~app variant =
  (* Vet eagerly so bad scenarios fail at construction, not mid-batch. *)
  let entry = Registry.find app in
  let cfg = String.lowercase_ascii cfg in
  ignore (cfg_preset_of_string cfg : Cfg.t);
  List.iter (fun (n, _) -> ignore (cfg_field n)) cfg_overrides;
  Harness.validate_extras ~app:entry.Registry.name
    ~known:entry.Registry.extras_spec extras;
  {
    app = entry.Registry.name;
    variant;
    policy;
    alloc;
    cfg_preset = cfg;
    cfg_overrides = sort_pairs cfg_overrides;
    scale;
    seed;
    scheduler;
    interp;
    extras = sort_pairs extras;
  }

(* --- string codec ---------------------------------------------------------- *)

let to_string t =
  let b = Buffer.create 96 in
  let add k v =
    if Buffer.length b > 0 then Buffer.add_char b ',';
    Buffer.add_string b k;
    Buffer.add_char b '=';
    Buffer.add_string b v
  in
  add "app" t.app;
  add "variant" (Harness.variant_to_string t.variant);
  Option.iter (fun p -> add "policy" (Cs.policy_to_key p)) t.policy;
  add "alloc" (alloc_to_string t.alloc);
  add "cfg" t.cfg_preset;
  List.iter (fun (n, v) -> add ("cfg." ^ n) (string_of_int v))
    t.cfg_overrides;
  Option.iter (fun s -> add "scale" (string_of_int s)) t.scale;
  Option.iter (fun s -> add "seed" (string_of_int s)) t.seed;
  add "sched" (scheduler_to_string t.scheduler);
  Option.iter (fun m -> add "interp" (interp_to_string m)) t.interp;
  List.iter (fun (k, v) -> add ("x." ^ k) v) t.extras;
  Buffer.contents b

let int_value ~key v =
  match int_of_string_opt v with
  | Some i -> i
  | None ->
    invalid_arg (Printf.sprintf "scenario %s=%S: expected an integer" key v)

(** Parse the [KEY=V,...] form ({!to_string}'s output, in any key order).
    @raise Invalid_argument on unknown keys or bad values. *)
let of_string s =
  let app = ref None and variant = ref None and policy = ref None in
  let alloc = ref Alloc.Pool and cfg = ref "k20c" in
  let cfg_overrides = ref [] and scale = ref None and seed = ref None in
  let scheduler = ref Dpc_sim.Timing.Processor_sharing in
  let interp = ref None and extras = ref [] in
  String.split_on_char ',' s
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" then
           match String.index_opt item '=' with
           | None ->
             invalid_arg
               (Printf.sprintf "scenario item %S: expected KEY=V" item)
           | Some i ->
             let key = String.sub item 0 i in
             let v =
               String.sub item (i + 1) (String.length item - i - 1)
             in
             (match key with
             | "app" -> app := Some v
             | "variant" -> variant := Some (Harness.variant_of_string v)
             | "policy" -> policy := Some (Cs.policy_of_string v)
             | "alloc" -> alloc := alloc_of_string v
             | "cfg" -> cfg := v
             | "scale" -> scale := Some (int_value ~key v)
             | "seed" -> seed := Some (int_value ~key v)
             | "sched" -> scheduler := scheduler_of_string v
             | "interp" -> interp := Some (interp_of_string v)
             | _ ->
               if String.length key > 4 && String.sub key 0 4 = "cfg."
               then
                 cfg_overrides :=
                   ( String.sub key 4 (String.length key - 4),
                     int_value ~key v )
                   :: !cfg_overrides
               else if String.length key > 2 && String.sub key 0 2 = "x."
               then
                 extras :=
                   (String.sub key 2 (String.length key - 2), v) :: !extras
               else
                 invalid_arg
                   (Printf.sprintf "unknown scenario key %S" key)))
  |> ignore;
  let app =
    match !app with
    | Some a -> a
    | None -> invalid_arg "scenario: missing app=NAME"
  in
  let variant =
    match !variant with
    | Some v -> v
    | None -> invalid_arg "scenario: missing variant=V"
  in
  make ?policy:!policy ~alloc:!alloc ~cfg:!cfg
    ~cfg_overrides:!cfg_overrides ?scale:!scale ?seed:!seed
    ~scheduler:!scheduler ?interp:!interp ~extras:!extras ~app variant

(* --- JSON codec ------------------------------------------------------------ *)

let to_json t =
  let opt k f v rest =
    match v with None -> rest | Some x -> (k, f x) :: rest
  in
  Json.Obj
    (("app", Json.String t.app)
     :: ("variant", Json.String (Harness.variant_to_string t.variant))
     :: opt "policy" (fun p -> Json.String (Cs.policy_to_key p)) t.policy
          (("alloc", Json.String (alloc_to_string t.alloc))
           :: ("cfg", Json.String t.cfg_preset)
           :: (if t.cfg_overrides = [] then []
               else
                 [ ( "cfg_overrides",
                     Json.Obj
                       (List.map
                          (fun (n, v) -> (n, Json.Int v))
                          t.cfg_overrides) ) ])
           @ opt "scale" (fun s -> Json.Int s) t.scale
               (opt "seed" (fun s -> Json.Int s) t.seed
                  (("sched", Json.String (scheduler_to_string t.scheduler))
                   :: opt "interp"
                        (fun m -> Json.String (interp_to_string m))
                        t.interp
                        (if t.extras = [] then []
                         else
                           [ ( "extras",
                               Json.Obj
                                 (List.map
                                    (fun (k, v) -> (k, Json.String v))
                                    t.extras) ) ])))))

let of_json (j : Json.t) =
  let obj =
    match j with
    | Json.Obj kvs -> kvs
    | _ -> invalid_arg "scenario JSON: expected an object"
  in
  let find k = List.assoc_opt k obj in
  let str k =
    match find k with
    | Some (Json.String s) -> Some s
    | Some _ -> invalid_arg (Printf.sprintf "scenario JSON %s: expected a string" k)
    | None -> None
  in
  let int k =
    match find k with
    | Some j -> Some (Json.to_int j)
    | None -> None
  in
  let require what = function
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "scenario JSON: missing %s" what)
  in
  let pairs k of_v =
    match find k with
    | None -> []
    | Some (Json.Obj kvs) -> List.map (fun (n, v) -> (n, of_v n v)) kvs
    | Some _ ->
      invalid_arg (Printf.sprintf "scenario JSON %s: expected an object" k)
  in
  make
    ?policy:(Option.map Cs.policy_of_string (str "policy"))
    ~alloc:
      (match str "alloc" with
      | Some a -> alloc_of_string a
      | None -> Alloc.Pool)
    ~cfg:(Option.value (str "cfg") ~default:"k20c")
    ~cfg_overrides:(pairs "cfg_overrides" (fun _ v -> Json.to_int v))
    ?scale:(int "scale") ?seed:(int "seed")
    ~scheduler:
      (match str "sched" with
      | Some s -> scheduler_of_string s
      | None -> Dpc_sim.Timing.Processor_sharing)
    ?interp:(Option.map interp_of_string (str "interp"))
    ~extras:
      (pairs "extras" (fun n v ->
           match v with
           | Json.String s -> s
           | _ ->
             invalid_arg
               (Printf.sprintf "scenario JSON extras.%s: expected a string"
                  n)))
    ~app:(require "app" (str "app"))
    (Harness.variant_of_string (require "variant" (str "variant")))

(** Decode a sweep file: either a bare JSON list of scenarios or an
    object with a ["scenarios"] member.  Each element is a scenario
    object ({!of_json}) or a canonical scenario string ({!of_string}). *)
let sweep_of_json (j : Json.t) =
  let item = function
    | Json.String s -> of_string s
    | element -> of_json element
  in
  match j with
  | Json.List l -> List.map item l
  | Json.Obj kvs -> (
    match List.assoc_opt "scenarios" kvs with
    | Some (Json.List l) -> List.map item l
    | Some _ ->
      invalid_arg "sweep JSON: \"scenarios\" must be a list"
    | None -> invalid_arg "sweep JSON: missing \"scenarios\" list")
  | _ ->
    invalid_arg "sweep JSON: expected a list or {\"scenarios\": [...]}"

(* --- cost model ------------------------------------------------------------ *)

(* Per-scenario cost estimate: effective problem items x per-item app
   weight x variant weight x interpreter weight.  The weights are fit
   from the measured per-scenario wall clocks committed in
   BENCH_pr8.json (the evaluation suite under every interpreter tier,
   best-of-reps, serial): the compiled tier's grid-level wall over the
   app's effective item count gives the per-item app weight (in
   microseconds of compiled wall per item), the per-variant wall
   ratios' geometric means across the seven apps give the variant
   weights, and the tier wall totals over the compiled total give the
   interpreter weights.  Earlier fits used simulated cycle counts as a
   wall proxy; the direct measurement corrects that (e.g. basic-dp
   burns ~10x the simulated cycles of grid-level but slightly *less*
   interpreter wall, because its tiny grids do proportionally little
   work per charge).  The stealing scheduler only needs relative
   order: mis-estimates cost balance, never correctness. *)

(* (effective items at scale, per-item weight in us of compiled wall).
   Scale semantics per app: node count for the citeseer-like apps,
   log2 node count for the kron-based apps, shrink divisor (larger =
   smaller tree, nominal full tree 16384 nodes) for the tree apps. *)
let app_cost_model app (scale : int option) =
  let lin default = float_of_int (Option.value scale ~default) in
  let exp2 default = Float.of_int (1 lsl Option.value scale ~default) in
  let shrink default =
    16384. /. float_of_int (Int.max 1 (Option.value scale ~default))
  in
  match app with
  | "SSSP" -> (lin 3000, 64.0)
  | "SpMV" -> (lin 8000, 18.3)
  | "PageRank" -> (lin 6000, 55.5)
  | "GC" -> (exp2 12, 525.7)
  | "BFS-Rec" -> (exp2 12, 18.6)
  | "TH" | "TD" -> (shrink 4, 57.7)
  | _ -> (lin 1000, 60.)  (* future apps: a neutral linear guess *)

let variant_weight = function
  | Harness.Basic -> 0.86
  | Harness.Flat -> 0.90
  | Harness.Cons Dpc_kir.Pragma.Warp -> 1.03
  | Harness.Cons Dpc_kir.Pragma.Block -> 1.00
  | Harness.Cons Dpc_kir.Pragma.Grid -> 1.0

let interp_weight = function
  | Some Dpc_sim.Interp.Reference -> 1.48
  | Some Dpc_sim.Interp.Bytecode -> 0.54
  | Some Dpc_sim.Interp.Compiled | None -> 1.0

(* Deep-memory-model scenarios spend extra interpreter wall per memory
   instruction (bank-conflict index collection and the MSHR ledger in
   Memmodel), so a mixed sweep would under-seed them in the stealing
   deques.  The weights are per enabled feature — derived from the
   resolved config rather than the preset name so [cfg.FIELD=N]
   overrides are priced too.  Fit against the pr10 memmodel sweep:
   deep presets run ~6-9% more wall than k20c at equal scale. *)
let cfg_weight t =
  let c = resolve_cfg t in
  let w = 1.0 in
  let w = if c.Cfg.shared_banks > 0 then w +. 0.03 else w in
  let w = if c.Cfg.mshr_per_warp > 0 then w +. 0.05 else w in
  w

(** Relative wall-clock estimate of one run, in baseline-cycle units.
    Only the ordering matters: {!Session.run_all}'s stealing scheduler
    seeds its deques longest-first by this value. *)
let cost_estimate t =
  let items, per_item = app_cost_model t.app t.scale in
  items *. per_item *. variant_weight t.variant *. interp_weight t.interp
  *. cfg_weight t

(* --- identity -------------------------------------------------------------- *)

(** Stable identity: the canonical string form. *)
let key = to_string

let hash t = Digest.to_hex (Digest.string (to_string t))

let equal a b = a = b

(** Short human label for tables and progress lines. *)
let label t =
  Printf.sprintf "%s/%s" t.app (Harness.variant_to_string t.variant)

(* --- lowering to the apps layer -------------------------------------------- *)

(** Lower to the harness-level run specification.  [preparer] threads the
    engine's compiled-program cache; [inspect] the session's profiling
    hook. *)
let to_spec ?preparer ?inspect t =
  Harness.spec ?policy:t.policy ~alloc:t.alloc ~cfg:(resolve_cfg t)
    ?scale:t.scale ?seed:t.seed ~scheduler:t.scheduler ?interp:t.interp
    ?preparer ?inspect ~extras:t.extras t.variant
