(** Scenario execution sessions.

    A session owns a {!Kcache} and a worker-pool width, and executes
    {!Scenario.t} values through the registry's spec-driven app entry
    points.  Runs that differ only in scale, seed or allocator share one
    parse/transform/finalize of their programs (and, per domain, one
    closure compilation per kernel); every run still gets a fresh device,
    memory and allocator, so results are byte-identical to uncached runs
    — which the determinism tests assert.

    {!run_all} is the batch executor the experiment suites sit on: it
    fans the scenario list over a {!Dpc_util.Pool} and returns per-
    scenario outcomes in submission order, capturing per-run exceptions
    (e.g. an infeasible explicit configuration in an exhaustive sweep)
    instead of failing the batch. *)

module Registry = Dpc_apps.Registry
module Metrics = Dpc_sim.Metrics

type outcome = {
  scenario : Scenario.t;
  result : (Metrics.report, exn) result;
}

type t = {
  cache : Kcache.t option;
  pool : Dpc_util.Pool.t;
  verbose : bool;
  strict_check : bool;
  inspect : (Scenario.t -> Dpc_sim.Device.t -> unit) option;
}

(** [create ()] builds a session.  [jobs] bounds batch parallelism
    (default 1: serial); [cache:false] disables program reuse (every run
    builds fresh — the baseline the cache benchmark compares against);
    [inspect] runs after each scenario's launches with its device (for
    profiling capture); [strict_check] installs the static verifier's
    strict finalize hook around batches, so every program a batch builds
    is vetted. *)
let create ?(jobs = 1) ?(cache = true) ?(verbose = false) ?inspect
    ?(strict_check = false) () =
  {
    cache = (if cache then Some (Kcache.create ()) else None);
    pool = Dpc_util.Pool.create ~jobs;
    verbose;
    strict_check;
    inspect;
  }

let jobs t = Dpc_util.Pool.jobs t.pool

let cache_stats t =
  match t.cache with
  | Some c -> Kcache.stats c
  | None -> { Kcache.hits = 0; misses = 0 }

let run_one t (sc : Scenario.t) =
  let entry = Registry.find sc.Scenario.app in
  let preparer = Option.map Kcache.preparer t.cache in
  let inspect = Option.map (fun f -> f sc) t.inspect in
  let spec = Scenario.to_spec ?preparer ?inspect sc in
  entry.Registry.run_spec spec

(** Execute one scenario; exceptions propagate. *)
let run t sc =
  let wrap f = if t.strict_check then Dpc_check.Check.with_strict f else f () in
  wrap (fun () -> run_one t sc)

(** Execute a batch across the session's pool.  Outcomes keep submission
    order; a failing scenario yields [Error] without aborting its
    siblings. *)
let run_all t (scenarios : Scenario.t list) : outcome list =
  let work sc =
    let result = try Ok (run_one t sc) with e -> Error e in
    if t.verbose then begin
      (* Progress goes to stderr: stdout carries the figure tables. *)
      (match result with
      | Ok r ->
        Printf.eprintf "engine: %-24s %12.0f cycles\n" (Scenario.label sc)
          r.Metrics.cycles
      | Error e ->
        Printf.eprintf "engine: %-24s failed: %s\n" (Scenario.label sc)
          (Printexc.to_string e));
      flush stderr
    end;
    { scenario = sc; result }
  in
  let body () = Dpc_util.Pool.parallel_map t.pool work scenarios in
  if t.strict_check then Dpc_check.Check.with_strict body else body ()

(** [report outcome] unwraps, re-raising a captured failure. *)
let report (o : outcome) =
  match o.result with Ok r -> r | Error e -> raise e
