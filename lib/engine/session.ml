(** Scenario execution sessions.

    A session owns a {!Kcache}, a worker-pool width and a pool scheduler,
    and executes {!Scenario.t} values through the registry's spec-driven
    app entry points.  Runs that differ only in scale, seed or allocator
    share one parse/transform/finalize of their programs (and, per
    domain, one closure compilation per kernel); every run still gets a
    fresh device, memory and allocator, so results are byte-identical to
    uncached runs — which the determinism tests assert.

    {!run_all} is the batch executor the experiment suites sit on: it
    fans the scenario list over a {!Dpc_util.Pool} and returns per-
    scenario outcomes in submission order, capturing per-run exceptions
    (e.g. an infeasible explicit configuration in an exhaustive sweep)
    instead of failing the batch.  Under the {!Dpc_util.Pool.Steal}
    scheduler the pool seeds its deques longest-first from
    {!Scenario.cost_estimate}; stealing only reorders wall-clock
    execution, never outcomes. *)

module Registry = Dpc_apps.Registry
module Metrics = Dpc_sim.Metrics
module Pool = Dpc_util.Pool

type outcome = {
  scenario : Scenario.t;
  result : (Metrics.report, exn) result;
}

type t = {
  cache : Kcache.t option;
  pool : Pool.t;
  verbose : bool;
  verbose_lock : Mutex.t;
  strict_check : bool;
  inspect : (Scenario.t -> Dpc_sim.Device.t -> unit) option;
}

(** [create ()] builds a session.  [jobs] bounds batch parallelism
    (default 1: serial) and [sched] picks the pool's dispatch scheduler
    (default [Shared]); [cache:false] disables program reuse (every run
    builds fresh — the baseline the cache benchmark compares against);
    [inspect] runs after each scenario's launches with its device (for
    profiling capture); [strict_check] installs the static verifier's
    strict finalize hook around every run — including, per worker domain,
    around each task of a batch — so every program a batch builds is
    vetted. *)
let create ?(jobs = 1) ?(sched = Pool.Shared) ?(cache = true)
    ?(verbose = false) ?inspect ?(strict_check = false) () =
  {
    cache = (if cache then Some (Kcache.create ()) else None);
    pool = Pool.create ~sched ~jobs ();
    verbose;
    verbose_lock = Mutex.create ();
    strict_check;
    inspect;
  }

let jobs t = Pool.jobs t.pool
let sched t = Pool.sched t.pool
let last_steals t = Pool.last_steals t.pool

let cache_stats t =
  match t.cache with
  | Some c -> Kcache.stats c
  | None -> { Kcache.hits = 0; misses = 0 }

let run_one t (sc : Scenario.t) =
  let entry = Registry.find sc.Scenario.app in
  let preparer = Option.map Kcache.preparer t.cache in
  let inspect = Option.map (fun f -> f sc) t.inspect in
  let spec = Scenario.to_spec ?preparer ?inspect sc in
  entry.Registry.run_spec spec

(* The strict-finalize hook is domain-local, so it must be (re)installed
   in whichever domain actually builds the program: around the whole call
   for a single run, around each task for a batch (tasks execute on pool
   worker domains the submitting domain's hook never reaches). *)
let wrap_strict t f = if t.strict_check then Dpc_check.Check.with_strict f else f ()

(** Execute one scenario; exceptions propagate. *)
let run t sc = wrap_strict t (fun () -> run_one t sc)

(** Execute a batch across the session's pool.  Outcomes keep submission
    order; a failing scenario yields [Error] without aborting its
    siblings. *)
let run_all t (scenarios : Scenario.t list) : outcome list =
  let work sc =
    let result =
      try Ok (wrap_strict t (fun () -> run_one t sc)) with e -> Error e
    in
    if t.verbose then begin
      (* Progress goes to stderr: stdout carries the figure tables.  One
         pre-formatted line per outcome, written under a lock: worker
         domains report concurrently, and an unserialized Printf
         interleaves *within* lines (the format engine emits piece by
         piece, and the channel lock only covers each piece). *)
      let line =
        match result with
        | Ok r ->
          Printf.sprintf "engine: %-24s %12.0f cycles\n" (Scenario.label sc)
            r.Metrics.cycles
        | Error e ->
          Printf.sprintf "engine: %-24s failed: %s\n" (Scenario.label sc)
            (Printexc.to_string e)
      in
      Mutex.protect t.verbose_lock (fun () ->
          output_string stderr line;
          flush stderr)
    end;
    { scenario = sc; result }
  in
  Pool.parallel_map ~cost:Scenario.cost_estimate t.pool work scenarios

(** [report outcome] unwraps, re-raising a captured failure. *)
let report (o : outcome) =
  match o.result with Ok r -> r | Error e -> raise e
