(** Scenario execution sessions.

    A session owns a {!Kcache}, a worker-pool width and a pool scheduler,
    and executes {!Scenario.t} values through the registry's spec-driven
    app entry points.  Runs that differ only in scale, seed or allocator
    share one parse/transform/finalize of their programs (and, per
    domain, one closure compilation per kernel); every run still gets a
    fresh device, memory and allocator, so results are byte-identical to
    uncached runs — which the determinism tests assert.  With [persist]
    the cache is additionally backed by an on-disk store, so even a
    cold process reuses programs an earlier process prepared.

    {!run_all} is the batch executor the experiment suites sit on: it
    fans the scenario list over a {!Dpc_util.Pool} and returns per-
    scenario outcomes in submission order, capturing per-run exceptions
    (e.g. an infeasible explicit configuration in an exhaustive sweep)
    instead of failing the batch.  Under the {!Dpc_util.Pool.Steal}
    scheduler the pool seeds its deques longest-first from the session's
    {!cost} estimate: the static {!Scenario.cost_estimate} model at
    first, refined online by each finished run's measured wall clock
    ({!Costs}), so a second sweep seeds from what the first observed.
    Stealing and estimates only reorder wall-clock execution, never
    outcomes. *)

module Registry = Dpc_apps.Registry
module Metrics = Dpc_sim.Metrics
module Pool = Dpc_util.Pool

type outcome = {
  scenario : Scenario.t;
  result : (Metrics.report, exn) result;
  elapsed_s : float;  (** wall clock of this run, preparation included *)
}

(* The persistent store's payload verifier: the header digest already
   guards accidental corruption, so what reaches this point decoded
   cleanly — re-lint the KIR and, for the bytecode tier, statically
   verify every lowered instruction stream, so a semantically stale or
   hand-edited .prep re-prepares instead of executing.  Exceptions out
   of the checkers (Marshal can produce arbitrarily mangled values) are
   rejects too, handled inside Pstore. *)
let verify_prep ~tier (p : Dpc_apps.Harness.prep) : (unit, string) result =
  match Dpc_check.Tv.lint_errors p.Dpc_apps.Harness.p_prog with
  | d :: _ -> Error (Dpc_check.Diag.to_string d)
  | [] -> (
    if tier <> "bytecode" then Ok ()
    else
      match Dpc_check.Bcverify.check p.Dpc_apps.Harness.p_prog with
      | [] -> Ok ()
      | d :: _ -> Error (Dpc_check.Diag.to_string d))

type t = {
  cache : Kcache.t option;
  costs : Costs.t;
  pool : Pool.t;
  verbose : bool;
  verbose_lock : Mutex.t;
  strict_check : bool;
  inspect : (Scenario.t -> Dpc_sim.Device.t -> unit) option;
}

(** [create ()] builds a session.  [jobs] bounds batch parallelism
    (default 1: serial) and [sched] picks the pool's dispatch scheduler
    (default [Shared]); [cache:false] disables program reuse (every run
    builds fresh — the baseline the cache benchmark compares against);
    [persist] backs the cache with the on-disk store rooted at that
    directory (created when absent; ignored with [cache:false]);
    [inspect] runs after each scenario's launches with its device (for
    profiling capture); [strict_check] installs the static verifier's
    strict finalize hook around every run — including, per worker domain,
    around each task of a batch — so every program a batch builds is
    vetted. *)
let create ?(jobs = 1) ?(sched = Pool.Shared) ?(cache = true) ?persist
    ?(verbose = false) ?inspect ?(strict_check = false) () =
  {
    cache =
      (if cache then
         Some
           (Kcache.create
              ?persist:
                (Option.map (Pstore.create ~verify:verify_prep) persist)
              ())
       else None);
    costs = Costs.create ();
    pool = Pool.create ~sched ~jobs ();
    verbose;
    verbose_lock = Mutex.create ();
    strict_check;
    inspect;
  }

let jobs t = Pool.jobs t.pool
let sched t = Pool.sched t.pool
let last_steals t = Pool.last_steals t.pool

let cache_stats t =
  match t.cache with Some c -> Kcache.stats c | None -> Kcache.zero_stats

let persist_stats t =
  Option.bind t.cache (fun c -> Option.map Pstore.stats (Kcache.persist c))

let cached_programs t =
  match t.cache with Some c -> Kcache.programs c | None -> 0

(** Current cost estimate of one scenario: the static model, overridden
    by this session's calibrated observation once the scenario has run
    (see {!Costs}).  This is what {!run_all} seeds the stealing
    scheduler with. *)
let cost t sc =
  Costs.estimate t.costs ~key:(Scenario.key sc)
    ~static:(Scenario.cost_estimate sc)

(** Distinct scenarios this session has timed so far. *)
let observed_costs t = Costs.observations t.costs

(* Under strict mode every prepared program additionally gets its
   bytecode streams statically verified at prepare time (fresh builds
   and cache loads alike); a cache-less strict session still verifies
   through the pass-through preparer. *)
let preparer_of t : Dpc_apps.Harness.preparer option =
  let base =
    match t.cache with
    | Some c -> Some (Kcache.preparer c)
    | None -> if t.strict_check then Some Dpc_apps.Harness.no_cache else None
  in
  match base with
  | Some base when t.strict_check ->
    Some
      (fun ~key ~interp ~cfgkey ~build ->
        let ((p, _) as r) = base ~key ~interp ~cfgkey ~build in
        if interp = "bytecode" then
          Dpc_check.Strict.verify_bytecode p.Dpc_apps.Harness.p_prog;
        r)
  | _ -> base

let run_one t (sc : Scenario.t) =
  let entry = Registry.find sc.Scenario.app in
  let preparer = preparer_of t in
  let inspect = Option.map (fun f -> f sc) t.inspect in
  let spec = Scenario.to_spec ?preparer ?inspect sc in
  entry.Registry.run_spec spec

(* The strict hooks (finalize linter + transform translation validation)
   are domain-local, so they must be (re)installed in whichever domain
   actually builds the program: around the whole call for a single run,
   around each task for a batch (tasks execute on pool worker domains
   the submitting domain's hooks never reach). *)
let wrap_strict t f =
  if t.strict_check then Dpc_check.Strict.with_strict f else f ()

(** Execute one scenario, capturing its error and wall clock; the
    measured time also feeds the session's online cost table.  This is
    the unit both {!run_all} and the serve daemon's streaming executor
    are built on. *)
let run_outcome t (sc : Scenario.t) : outcome =
  let t0 = Unix.gettimeofday () in
  let result =
    try Ok (wrap_strict t (fun () -> run_one t sc)) with e -> Error e
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Costs.record t.costs ~key:(Scenario.key sc)
    ~static:(Scenario.cost_estimate sc) ~seconds:elapsed_s;
  { scenario = sc; result; elapsed_s }

(** Execute one scenario; exceptions propagate. *)
let run t sc =
  let o = run_outcome t sc in
  match o.result with Ok r -> r | Error e -> raise e

(** Execute a batch across the session's pool.  Outcomes keep submission
    order; a failing scenario yields [Error] without aborting its
    siblings. *)
let run_all t (scenarios : Scenario.t list) : outcome list =
  let work sc =
    let o = run_outcome t sc in
    if t.verbose then begin
      (* Progress goes to stderr: stdout carries the figure tables.  One
         pre-formatted line per outcome, written under a lock: worker
         domains report concurrently, and an unserialized Printf
         interleaves *within* lines (the format engine emits piece by
         piece, and the channel lock only covers each piece). *)
      let line =
        match o.result with
        | Ok r ->
          Printf.sprintf "engine: %-24s %12.0f cycles\n" (Scenario.label sc)
            r.Metrics.cycles
        | Error e ->
          Printf.sprintf "engine: %-24s failed: %s\n" (Scenario.label sc)
            (Printexc.to_string e)
      in
      Mutex.protect t.verbose_lock (fun () ->
          output_string stderr line;
          flush stderr)
    end;
    o
  in
  Pool.parallel_map ~cost:(cost t) t.pool work scenarios

(** [report outcome] unwraps, re-raising a captured failure. *)
let report (o : outcome) =
  match o.result with Ok r -> r | Error e -> raise e
