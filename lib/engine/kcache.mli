(** Cross-run compiled-kernel cache.

    Caches the run-independent build products of app variants — parsed
    programs, {!Dpc.Transform} outputs, finalization — in one shared,
    mutex-guarded table (programs are finalized before publication and
    read-only afterwards), and compiled interpreter closures in
    per-domain tables (closures carry mutable scratch and must never run
    concurrently in two domains; see {!Dpc_sim.Interp.create_session}). *)

type t

type stats = { hits : int; misses : int }

val create : unit -> t

(** The cache as a {!Dpc_apps.Harness.preparer}: memoizes program builds
    by key and seeds each session with the calling domain's
    compiled-kernel table for that key. *)
val preparer : t -> Dpc_apps.Harness.preparer

(** A hit means a run skipped the parse/transform/finalize pipeline. *)
val stats : t -> stats

(** Number of distinct programs cached. *)
val programs : t -> int
