(** Cross-run compiled-kernel cache.

    Caches the run-independent build products of app variants — parsed
    programs, {!Dpc.Transform} outputs, finalization — in one shared,
    mutex-guarded table (programs are finalized before publication and
    read-only afterwards), and compiled interpreter closures in
    per-domain tables (closures carry mutable scratch and must never run
    concurrently in two domains; see {!Dpc_sim.Interp.create_session}).

    A cache may be backed by a persistent on-disk {!Pstore}: in-memory
    misses first try the store (a {e disk hit} skips the build pipeline
    and merely unmarshals), and fresh builds are written back atomically
    so cold processes start warm.  Stale or corrupt store files degrade
    to ordinary misses. *)

type t

type stats = {
  hits : int;  (** in-memory: build pipeline skipped entirely *)
  misses : int;  (** built fresh (and persisted, when backed by disk) *)
  disk_hits : int;  (** loaded from the persistent store *)
  disk_writes : int;  (** fresh builds serialized to the store *)
}

(** All counters zero — what a cacheless session reports. *)
val zero_stats : stats

(** [create ()] builds an in-memory cache; [persist] additionally backs
    it with an on-disk store shared across processes. *)
val create : ?persist:Pstore.t -> unit -> t

(** The backing store, when one was given. *)
val persist : t -> Pstore.t option

(** The cache as a {!Dpc_apps.Harness.preparer}: memoizes program builds
    by key and seeds each session with the calling domain's
    compiled-kernel table for that key. *)
val preparer : t -> Dpc_apps.Harness.preparer

(** A hit means a run skipped the parse/transform/finalize pipeline. *)
val stats : t -> stats

(** Number of distinct programs cached. *)
val programs : t -> int
