(** First-class run descriptions with stable codecs.

    A scenario is everything that picks one simulated run.  It replaces
    the optional-argument soup that used to thread app runners: suites
    declare scenario lists, CLI flags parse into it ([--scenario
    KEY=V,...]), sweep files deserialize into it, and the engine's
    compiled-kernel cache keys off it.

    Canonical form: {!to_string} emits [KEY=V] pairs in fixed field order
    with [None] fields omitted, so structural equality coincides with
    string equality — {!key} and {!hash} are derived from it. *)

type t = {
  app : string;  (** canonical registry name *)
  variant : Dpc_apps.Harness.variant;
  policy : Dpc.Config_select.policy option;
      (** [None]: the per-granularity default *)
  alloc : Dpc_alloc.Allocator.kind;
  cfg_preset : string;  (** a {!Dpc_gpu.Config.presets} name *)
  cfg_overrides : (string * int) list;
      (** integer device-config field overrides, sorted by field name *)
  scale : int option;  (** [None]: the app's documented default *)
  seed : int option;
  scheduler : Dpc_sim.Timing.scheduler;
  interp : Dpc_sim.Interp.mode option;  (** [None]: session default *)
  extras : (string * string) list;  (** app-specific knobs, sorted *)
}

(** Smart constructor: canonicalizes the app name via the registry,
    lowercases and vets the config preset, vets override field names, and
    sorts override/extra lists.
    @raise Invalid_argument on unknown apps, presets or fields. *)
val make :
  ?policy:Dpc.Config_select.policy ->
  ?alloc:Dpc_alloc.Allocator.kind ->
  ?cfg:string ->
  ?cfg_overrides:(string * int) list ->
  ?scale:int ->
  ?seed:int ->
  ?scheduler:Dpc_sim.Timing.scheduler ->
  ?interp:Dpc_sim.Interp.mode ->
  ?extras:(string * string) list ->
  app:string ->
  Dpc_apps.Harness.variant ->
  t

(** Device config: preset with overrides applied. *)
val resolve_cfg : t -> Dpc_gpu.Config.t

(** {2 Codecs} *)

val to_string : t -> string

(** Parse {!to_string}'s [KEY=V,...] form, any key order.  Unknown keys
    are rejected; [cfg.FIELD=N] addresses device-config overrides and
    [x.KEY=V] app extras.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_json : t -> Dpc_prof.Json.t
val of_json : Dpc_prof.Json.t -> t

(** Decode a sweep file: a bare JSON list of scenarios, or an object
    with a ["scenarios"] member; elements are scenario objects
    ({!of_json}) or canonical strings ({!of_string}). *)
val sweep_of_json : Dpc_prof.Json.t -> t list

val alloc_to_string : Dpc_alloc.Allocator.kind -> string
val alloc_of_string : string -> Dpc_alloc.Allocator.kind
val scheduler_to_string : Dpc_sim.Timing.scheduler -> string
val scheduler_of_string : string -> Dpc_sim.Timing.scheduler
val interp_to_string : Dpc_sim.Interp.mode -> string
val interp_of_string : string -> Dpc_sim.Interp.mode

(** {2 Cost model} *)

(** Relative wall-clock estimate of the run ([scale x app x variant]
    weights, plus the interpreter back end's measured ratio and a
    device-config weight for deep-memory-model features), fit from
    the measured per-scenario wall clocks committed in [BENCH_pr8.json]
    (the evaluation suite under every interpreter tier).
    {!Session.run_all}'s stealing scheduler orders its deques
    longest-first by this value; estimates steer scheduling only and
    never affect results. *)
val cost_estimate : t -> float

(** The config factor of {!cost_estimate}: 1.0 for the flat [k20c]
    model, more when the resolved config enables bank-conflict or MSHR
    accounting (which cost interpreter wall per memory instruction). *)
val cfg_weight : t -> float

(** {2 Identity} *)

(** Stable identity: the canonical string form. *)
val key : t -> string

(** MD5 of {!key}, hex. *)
val hash : t -> string

val equal : t -> t -> bool

(** Short human label, [app/variant]. *)
val label : t -> string

(** {2 Lowering} *)

(** Lower to the harness-level run specification.  [preparer] threads the
    engine's compiled-program cache; [inspect] a profiling hook. *)
val to_spec :
  ?preparer:Dpc_apps.Harness.preparer ->
  ?inspect:(Dpc_sim.Device.t -> unit) ->
  t ->
  Dpc_apps.Harness.spec
