(** Cross-run compiled-kernel cache.

    Two layers, with different sharing rules:

    - {b Program preps} (parse + {!Dpc.Transform} output + finalize) are
      immutable once finalized, so one mutex-guarded table serves every
      domain.  The build runs under the lock and the program is finalized
      {e before} publication, so concurrent readers only ever observe
      finished, read-only programs ({!Dpc_kir.Kernel.finalize} is
      idempotent — a later session's own finalize call is a no-op).
    - {b Compiled closures} ({!Dpc_sim.Compile.ckernel}) carry mutable
      per-warp scratch and must never execute concurrently in two
      domains, so each domain gets its own table per (cache, prep key)
      via [Domain.DLS].  Within a domain the table is handed to every
      session in turn: each kernel lowers at most once per domain per
      scenario family, instead of once per run.

    Hit/miss counters are cache-level atomics; a "hit" means a run
    skipped the parse/transform/finalize pipeline entirely. *)

module Harness = Dpc_apps.Harness

type stats = { hits : int; misses : int }

type t = {
  id : int;  (** distinguishes cache instances inside the per-domain DLS *)
  lock : Mutex.t;
  preps : (string, Harness.prep) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let next_id = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add next_id 1;
    lock = Mutex.create ();
    preps = Hashtbl.create 32;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

(* Per-domain ckernel tables, keyed by (cache id, prep key).  DLS state is
   born empty in every domain, so a table can never leak across domains. *)
let dls_tables :
    (int * string, Harness.ckernels) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let ckernels_for cache key =
  let tables = Domain.DLS.get dls_tables in
  match Hashtbl.find_opt tables (cache.id, key) with
  | Some t -> t
  | None ->
    let t = Hashtbl.create 16 in
    Hashtbl.replace tables (cache.id, key) t;
    t

(** The cache as a {!Harness.preparer}: memoizes the program build and
    seeds the session with this domain's compiled-kernel table. *)
let preparer cache : Harness.preparer =
 fun ~key ~build ->
  let prep =
    Mutex.protect cache.lock (fun () ->
        match Hashtbl.find_opt cache.preps key with
        | Some p ->
          Atomic.incr cache.hits;
          p
        | None ->
          Atomic.incr cache.misses;
          let p = build () in
          Dpc_kir.Kernel.Program.finalize p.Harness.p_prog;
          Hashtbl.replace cache.preps key p;
          p)
  in
  (prep, Some (ckernels_for cache key))

let stats cache =
  { hits = Atomic.get cache.hits; misses = Atomic.get cache.misses }

(** Number of distinct programs cached. *)
let programs cache =
  Mutex.protect cache.lock (fun () -> Hashtbl.length cache.preps)
