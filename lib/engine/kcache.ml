(** Cross-run compiled-kernel cache.

    Two layers, with different sharing rules:

    - {b Program preps} (parse + {!Dpc.Transform} output + finalize) are
      immutable once finalized, so one mutex-guarded table serves every
      domain.  The build runs under the lock and the program is finalized
      {e before} publication, so concurrent readers only ever observe
      finished, read-only programs ({!Dpc_kir.Kernel.finalize} is
      idempotent — a later session's own finalize call is a no-op).
    - {b Compiled closures} ({!Dpc_sim.Compile.ckernel}) carry mutable
      per-warp scratch and must never execute concurrently in two
      domains, so each domain gets its own table per (cache, prep key)
      via [Domain.DLS].  Within a domain the table is handed to every
      session in turn: each kernel lowers at most once per domain per
      scenario family, instead of once per run.

    A cache may additionally be backed by a persistent on-disk
    {!Pstore}: an in-memory miss first tries to load the prepared
    program a previous process serialized under the same key (a
    {e disk hit} — the parse/transform/finalize pipeline is skipped,
    the program merely unmarshalled), and a fresh build is written back
    atomically so the next cold process starts warm.  Disk contents are
    an accelerator only: any stale, truncated or corrupt file degrades
    to an ordinary miss.  Note that a disk-loaded program was vetted by
    the strict finalize hook of the process that {e built} it; loading
    does not re-run finalize-time checks.

    Hit/miss counters are cache-level atomics; a "hit" means a run
    skipped the parse/transform/finalize pipeline by finding the
    program in memory, a "disk hit" that it was loaded from the
    persistent store instead of built. *)

module Harness = Dpc_apps.Harness

type stats = {
  hits : int;  (** in-memory: build pipeline skipped entirely *)
  misses : int;  (** built fresh (and persisted, when backed by disk) *)
  disk_hits : int;  (** loaded from the persistent store *)
  disk_writes : int;  (** fresh builds serialized to the store *)
}

let zero_stats = { hits = 0; misses = 0; disk_hits = 0; disk_writes = 0 }

type t = {
  id : int;  (** distinguishes cache instances inside the per-domain DLS *)
  lock : Mutex.t;
  preps : (string, Harness.prep) Hashtbl.t;
  persist : Pstore.t option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  disk_hits : int Atomic.t;
  disk_writes : int Atomic.t;
}

let next_id = Atomic.make 0

(** [create ()] builds an in-memory cache; [persist] additionally backs
    it with an on-disk store shared across processes. *)
let create ?persist () =
  {
    id = Atomic.fetch_and_add next_id 1;
    lock = Mutex.create ();
    preps = Hashtbl.create 32;
    persist;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    disk_hits = Atomic.make 0;
    disk_writes = Atomic.make 0;
  }

let persist t = t.persist

(* Per-domain ckernel tables, keyed by (cache id, prep key).  DLS state is
   born empty in every domain, so a table can never leak across domains. *)
let dls_tables :
    (int * string, Harness.ckernels) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let ckernels_for cache key =
  let tables = Domain.DLS.get dls_tables in
  match Hashtbl.find_opt tables (cache.id, key) with
  | Some t -> t
  | None ->
    let t = Hashtbl.create 16 in
    Hashtbl.replace tables (cache.id, key) t;
    t

(* Miss path, under the cache lock: consult the persistent store first,
   build only when it cannot help, and write fresh builds back.  Disk
   I/O runs under the lock too — publication order must match the
   in-memory table, and the store's own writes are already atomic. *)
let build_or_load cache key tier cfgkey build =
  match
    Option.bind cache.persist (fun ps -> Pstore.load ps ~key ~tier ~cfgkey)
  with
  | Some p ->
    Atomic.incr cache.disk_hits;
    (* Marshalled after finalize, so the program round-trips finalized;
       re-finalizing is a no-op and keeps the invariant obvious. *)
    Dpc_kir.Kernel.Program.finalize p.Harness.p_prog;
    p
  | None ->
    Atomic.incr cache.misses;
    let p = build () in
    Dpc_kir.Kernel.Program.finalize p.Harness.p_prog;
    Option.iter
      (fun ps ->
        if Pstore.store ps ~key ~tier ~cfgkey p then
          Atomic.incr cache.disk_writes)
      cache.persist;
    p

(** The cache as a {!Harness.preparer}: memoizes the program build and
    seeds the session with this domain's compiled-kernel table.  The
    interpreter tier and device config are already folded into [key]
    (so closure and bytecode lowerings never share a prep entry or a
    ckernel table, and presets never share preps); the explicit
    [interp] and [cfgkey] tags additionally stamp persistent-store
    headers so on-disk files are self-describing. *)
let preparer cache : Harness.preparer =
 fun ~key ~interp ~cfgkey ~build ->
  let prep =
    Mutex.protect cache.lock (fun () ->
        match Hashtbl.find_opt cache.preps key with
        | Some p ->
          Atomic.incr cache.hits;
          p
        | None ->
          let p = build_or_load cache key interp cfgkey build in
          Hashtbl.replace cache.preps key p;
          p)
  in
  (prep, Some (ckernels_for cache key))

let stats cache =
  {
    hits = Atomic.get cache.hits;
    misses = Atomic.get cache.misses;
    disk_hits = Atomic.get cache.disk_hits;
    disk_writes = Atomic.get cache.disk_writes;
  }

(** Number of distinct programs cached. *)
let programs cache =
  Mutex.protect cache.lock (fun () -> Hashtbl.length cache.preps)
