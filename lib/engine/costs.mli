(** Session-local online cost learning for the stealing scheduler.

    Records each finished run's measured wall clock and scores future
    runs of the same scenario from the observation instead of the
    static {!Scenario.cost_estimate} model.  Observed seconds are
    rescaled onto the static model's unit through a learned calibration
    ratio (sum of static estimates / sum of observed seconds), so
    observed and never-seen scenarios rank on one scale.  Thread-safe;
    estimates steer {!Dpc_util.Pool.Steal} seeding only and never
    change results. *)

type t

val create : unit -> t

(** Record one finished run: scenario [key], the [static] estimate it
    ranked with, measured [seconds].  Repeats blend with an exponential
    moving average; non-finite or non-positive durations are ignored. *)
val record : t -> key:string -> static:float -> seconds:float -> unit

(** Distinct scenario keys with an observation. *)
val observations : t -> int

(** The calibrated observation for [key] when one exists, else
    [static]. *)
val estimate : t -> key:string -> static:float -> float
