(** Scenario execution sessions: the one way every front end (suite
    figures, CLI flags, sweep files, benchmarks) runs apps.

    A session owns a {!Kcache} and a worker pool.  Runs differing only in
    scale, seed or allocator share one program build (and one closure
    compilation per kernel per domain); every run still gets a fresh
    device, so results are byte-identical to uncached runs. *)

type outcome = {
  scenario : Scenario.t;
  result : (Dpc_sim.Metrics.report, exn) result;
}

type t

(** [jobs] bounds batch parallelism (default 1); [cache:false] disables
    program reuse (every run builds fresh); [verbose] prints a line per
    finished scenario; [inspect] runs after each scenario's launches with
    its device; [strict_check] installs the static verifier's strict
    finalize hook around runs and batches. *)
val create :
  ?jobs:int ->
  ?cache:bool ->
  ?verbose:bool ->
  ?inspect:(Scenario.t -> Dpc_sim.Device.t -> unit) ->
  ?strict_check:bool ->
  unit ->
  t

val jobs : t -> int

(** Zero for cacheless sessions. *)
val cache_stats : t -> Kcache.stats

(** Execute one scenario; exceptions propagate. *)
val run : t -> Scenario.t -> Dpc_sim.Metrics.report

(** Execute a batch across the session's pool.  Outcomes keep submission
    order; a failing scenario yields [Error] without aborting its
    siblings. *)
val run_all : t -> Scenario.t list -> outcome list

(** Unwrap an outcome, re-raising a captured failure. *)
val report : outcome -> Dpc_sim.Metrics.report
