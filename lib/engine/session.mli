(** Scenario execution sessions: the one way every front end (suite
    figures, CLI flags, sweep files, benchmarks) runs apps.

    A session owns a {!Kcache} and a worker pool.  Runs differing only in
    scale, seed or allocator share one program build (and one closure
    compilation per kernel per domain); every run still gets a fresh
    device, so results are byte-identical to uncached runs. *)

type outcome = {
  scenario : Scenario.t;
  result : (Dpc_sim.Metrics.report, exn) result;
}

type t

(** [jobs] bounds batch parallelism (default 1); [sched] picks the
    batch pool's dispatch scheduler (default [Shared]; [Steal] seeds
    per-worker deques longest-first from {!Scenario.cost_estimate} and
    lets idle workers steal — outcomes are identical, only wall-clock
    scheduling changes); [cache:false] disables program reuse (every run
    builds fresh); [verbose] prints a line per finished scenario (writes
    are serialized across worker domains); [inspect] runs after each
    scenario's launches with its device; [strict_check] installs the
    static verifier's domain-local strict finalize hook around each run,
    inside the worker domain that executes it. *)
val create :
  ?jobs:int ->
  ?sched:Dpc_util.Pool.sched ->
  ?cache:bool ->
  ?verbose:bool ->
  ?inspect:(Scenario.t -> Dpc_sim.Device.t -> unit) ->
  ?strict_check:bool ->
  unit ->
  t

val jobs : t -> int

val sched : t -> Dpc_util.Pool.sched

(** Tasks stolen across worker deques during the most recent {!run_all}
    (0 under the [Shared] scheduler and on the serial path). *)
val last_steals : t -> int

(** Zero for cacheless sessions. *)
val cache_stats : t -> Kcache.stats

(** Execute one scenario; exceptions propagate. *)
val run : t -> Scenario.t -> Dpc_sim.Metrics.report

(** Execute a batch across the session's pool.  Outcomes keep submission
    order; a failing scenario yields [Error] without aborting its
    siblings. *)
val run_all : t -> Scenario.t list -> outcome list

(** Unwrap an outcome, re-raising a captured failure. *)
val report : outcome -> Dpc_sim.Metrics.report
