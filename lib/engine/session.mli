(** Scenario execution sessions: the one way every front end (suite
    figures, CLI flags, sweep files, benchmarks, the serve daemon) runs
    apps.

    A session owns a {!Kcache} and a worker pool.  Runs differing only in
    scale, seed or allocator share one program build (and one closure
    compilation per kernel per domain); every run still gets a fresh
    device, so results are byte-identical to uncached runs.  With
    [persist] the cache is additionally backed by an on-disk store
    ({!Pstore}), so cold processes start warm. *)

type outcome = {
  scenario : Scenario.t;
  result : (Dpc_sim.Metrics.report, exn) result;
  elapsed_s : float;  (** wall clock of this run, preparation included *)
}

type t

(** [jobs] bounds batch parallelism (default 1); [sched] picks the
    batch pool's dispatch scheduler (default [Shared]; [Steal] seeds
    per-worker deques longest-first from the session's {!cost} estimate
    and lets idle workers steal — outcomes are identical, only
    wall-clock scheduling changes); [cache:false] disables program reuse
    (every run builds fresh); [persist] backs the cache with the on-disk
    store rooted at that directory (created when absent; ignored with
    [cache:false]); [verbose] prints a line per finished scenario
    (writes are serialized across worker domains); [inspect] runs after
    each scenario's launches with its device; [strict_check] installs
    the static verifier's domain-local strict finalize hook around each
    run, inside the worker domain that executes it. *)
val create :
  ?jobs:int ->
  ?sched:Dpc_util.Pool.sched ->
  ?cache:bool ->
  ?persist:string ->
  ?verbose:bool ->
  ?inspect:(Scenario.t -> Dpc_sim.Device.t -> unit) ->
  ?strict_check:bool ->
  unit ->
  t

val jobs : t -> int

val sched : t -> Dpc_util.Pool.sched

(** Tasks stolen across worker deques during the most recent {!run_all}
    (0 under the [Shared] scheduler and on the serial path). *)
val last_steals : t -> int

(** Zero for cacheless sessions. *)
val cache_stats : t -> Kcache.stats

(** On-disk store counters; [None] without [persist] (or with
    [cache:false]). *)
val persist_stats : t -> Pstore.stats option

(** Distinct program families currently in the in-memory cache. *)
val cached_programs : t -> int

(** Current cost estimate of one scenario: the static
    {!Scenario.cost_estimate}, overridden by this session's calibrated
    wall-clock observation once the scenario has run ({!Costs}).  This
    is what {!run_all} seeds the stealing scheduler with. *)
val cost : t -> Scenario.t -> float

(** Distinct scenarios this session has timed so far. *)
val observed_costs : t -> int

(** Execute one scenario, capturing its error and wall clock; the
    measurement also feeds the session's online cost table. *)
val run_outcome : t -> Scenario.t -> outcome

(** Execute one scenario; exceptions propagate. *)
val run : t -> Scenario.t -> Dpc_sim.Metrics.report

(** Execute a batch across the session's pool.  Outcomes keep submission
    order; a failing scenario yields [Error] without aborting its
    siblings. *)
val run_all : t -> Scenario.t list -> outcome list

(** Unwrap an outcome, re-raising a captured failure. *)
val report : outcome -> Dpc_sim.Metrics.report
