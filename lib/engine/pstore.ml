(** Persistent on-disk store for prepared programs.

    The in-process {!Kcache} amortizes one parse/transform/finalize per
    program family across a session; this store amortizes it across
    {e processes}: a cold CLI run or a freshly started daemon loads the
    prepared (post-transform, finalized) KIR a previous process built
    instead of rebuilding it.

    Layout: one file per prepared program, content-addressed by the
    caller's key (the {!Dpc_apps.Harness.prep_key} MD5 hex digest, which
    covers the variant tag, full source text, parent kernel, policy and
    device config — everything the build output depends on), stored as

    {v <dir>/<key>.prep v}

    Each file is a one-line header followed by an [Marshal] payload:

    {v dpc-kcache-v3 ocaml=<version> tier=<interp tier> cfg=<config digest> md5=<payload digest> len=<bytes> v}

    The header is the {b format-version guard}: a reader rejects (and a
    later write replaces) any file whose format tag, OCaml version,
    interpreter tier or device-config digest differs — [Marshal] images
    are not portable across compiler versions, and the KIR types may
    change shape across repo versions (bump {!format_version} when they
    do).  The tier tag names the interpreter back end the entry was
    prepared for, the cfg digest the device preset it was built under
    ({!Dpc_apps.Harness.cfg_digest}): both are already folded into the
    content-addressed key, so distinct tiers and presets occupy
    distinct files, but stamping them in the header as well means a
    mixed cache directory (or a key scheme change) degrades to an
    ordinary re-prepare instead of silently serving one tier's or one
    preset's artifact to another.  The digest and length reject
    truncated or corrupted payloads before unmarshalling.

    {b Writes are atomic}: the payload goes to a process-unique temp
    file in the same directory, then [Sys.rename]s over the final name.
    Concurrent writers (a daemon and a CLI run racing on the same cache
    directory) can both write; each rename publishes a complete file
    and the last one wins — readers never observe a partial file.

    Every failure mode (missing directory, unreadable file, bad header,
    short payload, digest mismatch, unmarshal error) degrades to a
    cache miss — the store is an accelerator, never a correctness
    dependency — and is counted in {!stats}. *)

module Harness = Dpc_apps.Harness

let format_version = "dpc-kcache-v3"

type stats = {
  loads : int;  (** successful loads *)
  load_failures : int;  (** missing, stale-format or corrupt files *)
  stores : int;  (** successful atomic writes *)
  store_failures : int;
  verify_rejects : int;
      (** well-formed files whose payload the verifier refused *)
}

type t = {
  dir : string;
  verify : (tier:string -> Harness.prep -> (unit, string) result) option;
  loads : int Atomic.t;
  load_failures : int Atomic.t;
  stores : int Atomic.t;
  store_failures : int Atomic.t;
  verify_rejects : int Atomic.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** [create dir] opens (creating it, parents included) the store rooted
    at [dir].  [verify] vets every successfully decoded payload before
    it is handed out: [Error reason] (or an exception) rejects the file
    — counted in {!stats}[.verify_rejects], reported on stderr, and
    degraded to an ordinary miss so the caller re-prepares.  The header
    digest only guards against {e accidental} corruption; the verifier
    is what stands between a hand-edited or semantically stale [.prep]
    and the interpreter.  @raise Unix.Unix_error when the directory
    cannot be created. *)
let create ?verify dir =
  mkdir_p dir;
  {
    dir;
    verify;
    loads = Atomic.make 0;
    load_failures = Atomic.make 0;
    stores = Atomic.make 0;
    store_failures = Atomic.make 0;
    verify_rejects = Atomic.make 0;
  }

let dir t = t.dir

let stats t =
  {
    loads = Atomic.get t.loads;
    load_failures = Atomic.get t.load_failures;
    stores = Atomic.get t.stores;
    store_failures = Atomic.get t.store_failures;
    verify_rejects = Atomic.get t.verify_rejects;
  }

(* Keys are MD5 hex digests, but never trust a path component: anything
   that could escape [dir] is refused outright. *)
let valid_key key =
  key <> ""
  && String.for_all
       (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
       key

let path_of t key = Filename.concat t.dir (key ^ ".prep")

(* Tier tags are single words from {!Dpc_sim.Interp.mode_to_string};
   anything that would break the space-separated header is refused. *)
let valid_tier tier =
  tier <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
       tier

(* Config digests are MD5 hex like keys; refuse anything else. *)
let valid_cfgkey = valid_key

let header ~tier ~cfgkey ~payload =
  Printf.sprintf "%s ocaml=%s tier=%s cfg=%s md5=%s len=%d\n" format_version
    Sys.ocaml_version tier cfgkey
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

(** Serialize [prep] under [key] for interpreter tier [tier] built under
    device config [cfgkey].  Returns [false] (and counts a store
    failure) instead of raising on any I/O problem. *)
let store t ~key ~tier ~cfgkey (prep : Harness.prep) =
  if not (valid_key key && valid_tier tier && valid_cfgkey cfgkey) then begin
    Atomic.incr t.store_failures;
    false
  end
  else begin
    let tmp =
      Filename.concat t.dir
        (Printf.sprintf ".tmp-%d-%s" (Unix.getpid ()) key)
    in
    let ok =
      try
        let payload = Marshal.to_string prep [] in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (header ~tier ~cfgkey ~payload);
            output_string oc payload);
        Sys.rename tmp (path_of t key);
        true
      with _ ->
        (try Sys.remove tmp with _ -> ());
        false
    in
    Atomic.incr (if ok then t.stores else t.store_failures);
    ok
  end

(* Header parse: [format_version ocaml=V tier=T cfg=HEX md5=HEX len=N].
   Any deviation means "not ours / not this version / not this tier /
   not this device config" and the load degrades to a miss. *)
let parse_header ~tier ~cfgkey line =
  match String.split_on_char ' ' line with
  | [ tag; ocaml; htier; hcfg; md5; len ] -> (
    let field prefix s =
      let p = prefix ^ "=" in
      let pl = String.length p in
      if String.length s > pl && String.sub s 0 pl = p then
        Some (String.sub s pl (String.length s - pl))
      else None
    in
    match
      (field "ocaml" ocaml, field "tier" htier, field "cfg" hcfg,
       field "md5" md5, field "len" len)
    with
    | Some ov, Some tv, Some cv, Some digest, Some len_s
      when tag = format_version -> (
      match int_of_string_opt len_s with
      | Some n
        when n >= 0 && ov = Sys.ocaml_version && tv = tier && cv = cfgkey
        ->
        Some (digest, n)
      | _ -> None)
    | _ -> None)
  | _ -> None

(** Load the prepared program stored under [key] for interpreter tier
    [tier] and device config [cfgkey], or [None] when the file is
    absent, from another format version, tier or config, truncated,
    corrupt, or unreadable.  An absent file is an ordinary miss; only a
    present but rejected file counts as a load failure. *)
let load t ~key ~tier ~cfgkey : Harness.prep option =
  if not (valid_key key && valid_tier tier && valid_cfgkey cfgkey) then None
  else
    match open_in_bin (path_of t key) with
    | exception Sys_error _ -> None
    | ic ->
      let result =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              match parse_header ~tier ~cfgkey (input_line ic) with
              | None -> None
              | Some (digest, len) ->
                let payload = really_input_string ic len in
                (* A trailing-garbage write (longer file than the header
                   claims) is as corrupt as a truncated one. *)
                if
                  pos_in ic <> in_channel_length ic
                  || Digest.to_hex (Digest.string payload) <> digest
                then None
                else Some (Marshal.from_string payload 0 : Harness.prep)
            with _ -> None)
      in
      (match result with
      | None ->
        Atomic.incr t.load_failures;
        None
      | Some prep -> (
        let verdict =
          match t.verify with
          | None -> Ok ()
          | Some v -> (
            try v ~tier prep with e -> Error (Printexc.to_string e))
        in
        match verdict with
        | Ok () ->
          Atomic.incr t.loads;
          Some prep
        | Error reason ->
          Atomic.incr t.verify_rejects;
          Printf.eprintf
            "dpc: pstore: verifier rejected %s.prep (%s); re-preparing\n%!"
            key reason;
          None))
