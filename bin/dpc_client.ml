(* dpc-client: command-line client for the dpcd sweep daemon.

   Usage:
     dpc-client --socket /tmp/dpcd.sock --ping
     dpc-client --socket /tmp/dpcd.sock \
       --scenario app=SSSP,variant=grid-level,scale=500 --json out.json
     dpc-client --socket /tmp/dpcd.sock --sweep sweep.json
     dpc-client --socket /tmp/dpcd.sock --stats
     dpc-client --socket /tmp/dpcd.sock --shutdown

   Scenario sweeps stream: one progress line per outcome as the server
   finishes it.  --json re-assembles the streamed records into a
   dpc-sweep-v1 snapshot (source "dpc-client") that is record-wise
   byte-identical to what `experiments --sweep --json` writes for the
   same scenarios.

   Exit status: 0 on success, 1 when any scenario failed (or the request
   timed out, or the daemon refused it), 2 on usage errors. *)

open Cmdliner
module Json = Dpc_prof.Json
module Scenario = Dpc_engine.Scenario
module Client = Dpc_serve.Client
module Protocol = Dpc_serve.Protocol

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty json))

let progress ~quiet (ev : Protocol.event) =
  if not quiet then
    match ev with
    | Protocol.Outcome o ->
      let label =
        match Json.member "key" o.outcome with
        | Some (Json.String k) -> k
        | _ -> "?"
      in
      let status =
        if Json.member "error" o.outcome <> None then "FAILED" else "ok"
      in
      Printf.eprintf "[%d/%d] %s  %s (%.3fs)\n%!" (o.seq + 1) o.total label
        status o.elapsed_s
    | _ -> ()

let run_sweep conn ~quiet ~timeout_s ~json_out scenario_args sweep_file =
  let parsed = List.map Scenario.of_string scenario_args in
  let from_file =
    match sweep_file with
    | None -> []
    | Some path -> Scenario.sweep_of_json (Json.parse (read_file path))
  in
  let scs = parsed @ from_file in
  if scs = [] then begin
    prerr_endline "dpc-client: empty sweep (no scenarios given)";
    exit 2
  end;
  match Client.sweep ?timeout_s ~on_event:(progress ~quiet) conn scs with
  | Error msg ->
    Printf.eprintf "dpc-client: %s\n" msg;
    1
  | Ok r ->
    if not quiet then
      Printf.eprintf "%d run, %d failed%s in %.3fs (server wall clock)\n%!"
        r.Client.runs r.Client.failed
        (if r.Client.timed_out then
           Printf.sprintf ", %d skipped (request timed out)" r.Client.skipped
         else "")
        r.Client.elapsed_s;
    (match json_out with
    | Some path ->
      write_file path (Client.sweep_snapshot r);
      if not quiet then Printf.eprintf "[sweep] outcome snapshot -> %s\n%!" path
    | None -> ());
    if r.Client.failed > 0 || r.Client.timed_out then 1 else 0

let run socket scenario_args sweep_file json_out timeout_s stats ping shutdown
    quiet =
  let fail_usage msg =
    prerr_endline ("dpc-client: " ^ msg);
    exit 2
  in
  let modes =
    (if stats then 1 else 0) + (if ping then 1 else 0)
    + (if shutdown then 1 else 0)
    + if scenario_args <> [] || sweep_file <> None then 1 else 0
  in
  if modes = 0 then
    fail_usage "nothing to do (give --scenario/--sweep, --stats, --ping or --shutdown)";
  if modes > 1 then
    fail_usage "--stats, --ping, --shutdown and sweeps are mutually exclusive";
  match Client.connect socket with
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "dpc-client: cannot connect to %s: %s\n" socket
      (Unix.error_message e);
    1
  | conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        if ping then
          match Client.ping conn with
          | Ok () ->
            if not quiet then print_endline "pong";
            0
          | Error msg ->
            Printf.eprintf "dpc-client: %s\n" msg;
            1
        else if stats then
          match Client.stats conn with
          | Ok j ->
            print_endline (Json.to_string_pretty j);
            0
          | Error msg ->
            Printf.eprintf "dpc-client: %s\n" msg;
            1
        else if shutdown then
          match Client.shutdown conn with
          | Ok () ->
            if not quiet then print_endline "daemon draining";
            0
          | Error msg ->
            Printf.eprintf "dpc-client: %s\n" msg;
            1
        else
          try run_sweep conn ~quiet ~timeout_s ~json_out scenario_args sweep_file
          with Invalid_argument msg | Failure msg ->
            Printf.eprintf "dpc-client: %s\n" msg;
            2)

let socket =
  Arg.(required & opt (some string) None
       & info [ "socket"; "connect" ] ~docv:"PATH"
       ~doc:"Unix-domain socket path of the dpcd daemon.")

let scenario_args =
  Arg.(value & opt_all string [] & info [ "scenario" ] ~docv:"KEY=V,..."
       ~doc:"Run one scenario on the daemon (repeatable); same syntax as \
             $(b,experiments --scenario).")

let sweep_file =
  Arg.(value & opt (some file) None & info [ "sweep" ] ~docv:"FILE"
       ~doc:"Run every scenario of a JSON sweep file; same format as \
             $(b,experiments --sweep).")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Write the streamed outcomes as a dpc-sweep-v1 snapshot \
             (source \"dpc-client\") to $(docv).")

let timeout_s =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
       ~doc:"Request-level wall-clock budget; the server skips the \
             remaining scenarios once exceeded.")

let stats =
  Arg.(value & flag & info [ "stats" ]
       ~doc:"Print the daemon's stats (cache hits, steals, latency) as \
             JSON.")

let ping =
  Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check.")

let shutdown =
  Arg.(value & flag & info [ "shutdown" ]
       ~doc:"Ask the daemon to drain in-flight work and exit.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ]
       ~doc:"Suppress per-outcome progress lines.")

let cmd =
  let doc = "talk to a dpcd sweep daemon" in
  Cmd.v (Cmd.info "dpc-client" ~doc)
    Term.(
      const run $ socket $ scenario_args $ sweep_file $ json_out $ timeout_s
      $ stats $ ping $ shutdown $ quiet)

let () = exit (Cmd.eval' cmd)
