(* dpcc: the directive-based workload-consolidation compiler, as a
   source-to-source command-line tool (the paper's ROSE-based compiler).

   Input: MiniCU source with a #pragma dp annotated device-side launch.
   Output: MiniCU source with the consolidated parent, the consolidated
   child kernel, and (for grid-level postwork) the consolidated postwork
   kernel. *)

open Cmdliner

let pragma_help =
  {|#pragma dp clause reference (Table I of the paper):

  #pragma dp consldt(warp|block|grid)          consolidation granularity  [required]
             buffer(default|halloc|custom
                    [, perBufferSize: <int|var>]
                    [, totalSize: <int>])      buffer allocator and sizing [optional]
             work(v1, v2, ...)                 variables to buffer        [required]
             threads(<int>)                    consolidated block size    [optional]
             blocks(<int>)                     consolidated grid size     [optional]

Place the directive on the line before the device-side launch it applies to:

  #pragma dp consldt(block) buffer(custom, perBufferSize: 256) work(curr)
  launch child<<<1, 64>>>(arr, curr);
|}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- profiling mode ------------------------------------------------------ *)

(* Run one scenario on the simulated device through the engine, print
   its report and per-kernel profile, and optionally export the Chrome
   trace.  This is the simulator-side counterpart of the compile path:
   the paper's evaluation workflow (nvprof over a benchmark binary)
   compressed into one command. *)
let run_profiled ~scenario ~profile_out =
  let events = ref [||] in
  let num_smx = ref 0 in
  let inspect _scenario dev =
    events := Dpc_sim.Device.profile dev;
    num_smx := (Dpc_sim.Device.config dev).Dpc_gpu.Config.num_smx
  in
  let session = Dpc_engine.Session.create ~inspect () in
  let report = Dpc_engine.Session.run session scenario in
  Dpc_sim.Metrics.print
    ~title:
      (Printf.sprintf "%s / %s" scenario.Dpc_engine.Scenario.app
         (Dpc_apps.Harness.variant_to_string
            scenario.Dpc_engine.Scenario.variant))
    report;
  print_newline ();
  Dpc_util.Table.print
    (Dpc_prof.Profile.table (Dpc_prof.Profile.of_events !events));
  (match profile_out with
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Dpc_prof.Chrome_trace.to_string ~num_smx:!num_smx !events));
    Printf.eprintf "dpcc: Chrome trace (%d events) -> %s\n"
      (Array.length !events) path
  | None -> ());
  0

(* --- static checking mode ------------------------------------------------ *)

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Dpc_prof.Json.to_string_pretty json));
  Printf.eprintf "dpcc: check report -> %s\n" path

(* Exit status of a lint: errors always fail; --strict also fails on
   warnings. *)
let lint_failed ~strict diags =
  List.exists Dpc_check.Diag.is_error diags || (strict && diags <> [])

(* Lint one MiniCU file: every kernel of the program, with file:line
   locations. *)
let run_check_file ~strict ~json_out path =
  let src = read_file path in
  let prog = Dpc_minicu.Parser.parse_program src in
  let diags = Dpc_check.Check.check_program prog in
  Dpc_check.Check.print_report ~file:path stdout diags;
  Printf.printf "%s: %s\n" path (Dpc_check.Check.summary diags);
  Option.iter
    (fun p -> write_json p (Dpc_check.Check.report_json diags))
    json_out;
  if lint_failed ~strict diags then 1 else 0

(* Lint every registered app at every lintable variant (the annotated
   source as written, the consolidation output at each granularity, and
   the flat kernels), translation-validate every consolidation
   transform, and statically verify every bytecode stream the programs
   lower to. *)
let run_check_apps ~strict ~json_out =
  let entries = Dpc_apps.Registry.all in
  let lint_units =
    List.concat_map
      (fun (e : Dpc_apps.Registry.entry) ->
        List.map
          (fun (variant, prog) ->
            (Printf.sprintf "%s/%s" e.Dpc_apps.Registry.name variant, prog))
          (e.Dpc_apps.Registry.programs ()))
      entries
  in
  let tv_units =
    List.concat_map
      (fun (e : Dpc_apps.Registry.entry) ->
        List.map
          (fun (variant, parent, orig, r) ->
            ( Printf.sprintf "%s/tv/%s" e.Dpc_apps.Registry.name variant,
              Dpc_check.Tv.check ~parent ~orig r ))
          (e.Dpc_apps.Registry.tv_units ()))
      entries
  in
  let bc_units =
    List.map
      (fun (label, prog) ->
        (label ^ "/bytecode", Dpc_check.Bcverify.check prog))
      lint_units
  in
  let per_unit =
    List.map
      (fun (label, prog) -> (label, Dpc_check.Check.check_program prog))
      lint_units
    @ tv_units @ bc_units
  in
  List.iter
    (fun (label, diags) ->
      List.iter
        (fun d ->
          Printf.printf "%s: %s\n" label (Dpc_check.Diag.to_string d))
        diags)
    per_unit;
  let all = List.concat_map snd per_unit in
  Printf.printf
    "checked %d units (%d lint, %d transform-validation, %d bytecode; %d \
     apps): %s\n"
    (List.length per_unit) (List.length lint_units) (List.length tv_units)
    (List.length bc_units) (List.length entries)
    (Dpc_check.Check.summary all);
  Option.iter
    (fun p ->
      write_json p
        (Dpc_prof.Json.Obj
           [
             ("schema", Dpc_prof.Json.String "dpc-check-sweep-v1");
             ( "units",
               Dpc_prof.Json.List
                 (List.map
                    (fun (label, diags) ->
                      Dpc_prof.Json.Obj
                        [
                          ("unit", Dpc_prof.Json.String label);
                          ("report", Dpc_check.Diag.report_to_json diags);
                        ])
                    per_unit) );
           ]))
    json_out;
  if lint_failed ~strict all then 1 else 0

(* Run the seeded-bad-kernel harness: every mutant must be caught by its
   analysis, every clean twin must lint silent. *)
let run_mutants () =
  let outcomes = Dpc_check.Mutate.run_all () in
  let failures = ref 0 in
  List.iter
    (fun (o : Dpc_check.Mutate.outcome) ->
      let m = o.Dpc_check.Mutate.mutant in
      let expect =
        match m.Dpc_check.Mutate.expect with
        | Some id -> id
        | None -> "clean"
      in
      let verdict =
        if o.Dpc_check.Mutate.ok then "ok"
        else begin
          incr failures;
          match m.Dpc_check.Mutate.expect with
          | Some _ -> "MISSED"
          | None -> "FALSE POSITIVE"
        end
      in
      Printf.printf "%-28s %-10s %-6s %s\n" m.Dpc_check.Mutate.mname
        m.Dpc_check.Mutate.analysis expect verdict;
      if not o.Dpc_check.Mutate.ok then
        List.iter
          (fun d ->
            Printf.printf "    %s\n" (Dpc_check.Diag.to_string d))
          o.Dpc_check.Mutate.diags)
    outcomes;
  Printf.printf "mutants: %d/%d as expected\n"
    (List.length outcomes - !failures)
    (List.length outcomes);
  if !failures = 0 then 0 else 1

let run input parent policy output help_pragma app variant scale scenario
    interp profile_out check strict check_json mutants =
  (match interp with
  | Some m -> Dpc_sim.Interp.set_default_mode m
  | None -> ());
  if help_pragma then begin
    print_string pragma_help;
    0
  end
  else if mutants then run_mutants ()
  else if check then begin
    match input with
    | Some path -> (
      try run_check_file ~strict ~json_out:check_json path with
      | Dpc_minicu.Lexer.Lex_error { line; msg } ->
        Printf.eprintf "dpcc: %s:%d: lexical error: %s\n" path line msg;
        1
      | Dpc_minicu.Parser.Parse_error { line; msg } ->
        Printf.eprintf "dpcc: %s:%d: syntax error: %s\n" path line msg;
        1
      | Dpc_minicu.Pragma_parser.Pragma_error msg ->
        Printf.eprintf "dpcc: %s: bad #pragma dp: %s\n" path msg;
        1)
    | None -> (
      try run_check_apps ~strict ~json_out:check_json with
      | Dpc.Transform.Unsupported msg ->
        Printf.eprintf "dpcc: unsupported: %s\n" msg;
        1
      | Failure msg ->
        Printf.eprintf "dpcc: %s\n" msg;
        1)
  end
  else
    match (scenario, app, input) with
    | Some _, Some _, _ ->
      prerr_endline "dpcc: --scenario and --app are mutually exclusive";
      2
    | Some s, None, _ -> (
      (* Full scenario profiling: everything (variant, scale, seed,
         device config, policy, ...) comes from the scenario string. *)
      try
        run_profiled ~scenario:(Dpc_engine.Scenario.of_string s) ~profile_out
      with
      | Failure msg | Invalid_argument msg ->
        Printf.eprintf "dpcc: %s\n" msg;
        1
      | Dpc_apps.Harness.Verification_failed msg ->
        Printf.eprintf "dpcc: verification failed: %s\n" msg;
        1)
    | None, Some app, _ -> (
      try
        let scenario =
          Dpc_engine.Scenario.make ~app ?scale
            (Dpc_apps.Harness.variant_of_string variant)
        in
        run_profiled ~scenario ~profile_out
      with
      | Failure msg | Invalid_argument msg ->
        Printf.eprintf "dpcc: %s\n" msg;
        1
      | Dpc_apps.Harness.Verification_failed msg ->
        Printf.eprintf "dpcc: verification failed: %s\n" msg;
        1)
    | None, None, _ when profile_out <> None ->
      prerr_endline
        "dpcc: --profile needs --app or --scenario (profiling runs a \
         registered benchmark on the simulated device)";
      2
    | None, None, None ->
      prerr_endline "dpcc: missing input file (see --help)";
      2
    | None, None, Some path -> (
      try
        let src = read_file path in
        let prog = Dpc_minicu.Parser.parse_program src in
        let parent =
          match parent with
          | Some p -> p
          | None -> (
            (* Default: the unique kernel containing an annotated launch. *)
            let annotated =
              List.filter
                (fun k ->
                  List.exists
                    (fun (l : Dpc_kir.Ast.launch) -> l.Dpc_kir.Ast.pragma <> None)
                    (Dpc_kir.Ast.collect_launches k.Dpc_kir.Kernel.body))
                (Dpc_kir.Kernel.Program.kernels prog)
            in
            match annotated with
            | [ k ] -> k.Dpc_kir.Kernel.kname
            | [] -> failwith "no kernel contains a #pragma dp annotated launch"
            | ks ->
              failwith
                (Printf.sprintf
                   "multiple annotated kernels (%s); pick one with --parent"
                   (String.concat ", "
                      (List.map (fun k -> k.Dpc_kir.Kernel.kname) ks))))
        in
        let policy = Option.map Dpc.Config_select.policy_of_string policy in
        let r =
          Dpc.Transform.apply ?policy ~cfg:Dpc_gpu.Config.k20c ~parent prog
        in
        let out = Dpc_kir.Pp.program r.Dpc.Transform.program in
        (match output with
        | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc out)
        | None -> print_string out);
        Printf.eprintf
          "dpcc: %s consolidation of %s -> entry kernel %s%s\n"
          (Dpc_kir.Pragma.granularity_to_string r.Dpc.Transform.granularity)
          parent r.Dpc.Transform.entry
          (match r.Dpc.Transform.post_kernel with
          | Some p -> Printf.sprintf " (postwork kernel %s)" p
          | None -> "");
        0
      with
      | Dpc_minicu.Lexer.Lex_error { line; msg } ->
        Printf.eprintf "dpcc: %s:%d: lexical error: %s\n" path line msg;
        1
      | Dpc_minicu.Parser.Parse_error { line; msg } ->
        Printf.eprintf "dpcc: %s:%d: syntax error: %s\n" path line msg;
        1
      | Dpc_minicu.Pragma_parser.Pragma_error msg ->
        Printf.eprintf "dpcc: %s: bad #pragma dp: %s\n" path msg;
        1
      | Dpc.Transform.Unsupported msg ->
        Printf.eprintf "dpcc: %s: unsupported: %s\n" path msg;
        1
      | Failure msg | Invalid_argument msg ->
        Printf.eprintf "dpcc: %s\n" msg;
        1)

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"Annotated MiniCU source file.")

let parent =
  Arg.(value & opt (some string) None & info [ "parent" ] ~docv:"KERNEL"
       ~doc:"Kernel containing the annotated launch (default: unique).")

let policy =
  Arg.(value & opt (some string) None & info [ "policy" ] ~docv:"POLICY"
       ~doc:"Configuration policy: kc1, kc16, kc32, 1-1, or BxT (e.g. 26x256). \
             Default: the paper's per-granularity KC policy.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
       ~doc:"Write generated source here (default: stdout).")

let help_pragma =
  Arg.(value & flag & info [ "help-pragma" ]
       ~doc:"Print the #pragma dp clause reference (Table I) and exit.")

let app_arg =
  Arg.(value & opt (some string) None & info [ "app" ] ~docv:"NAME"
       ~doc:"Profiling mode: run the registered benchmark $(docv) (SSSP, \
             SpMV, PageRank, GC, BFS-Rec, TH, TD) on the simulated \
             device instead of compiling, and print its report and \
             per-kernel profile.")

let variant_arg =
  Arg.(value & opt string "basic-dp" & info [ "variant" ] ~docv:"V"
       ~doc:"App variant in profiling mode: basic-dp, no-dp, warp-level, \
             block-level, or grid-level.")

let scale_arg =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N"
       ~doc:"Problem-size override in profiling mode (interpreted per \
             app, as in bin/experiments).")

let scenario_arg =
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"KEY=V,..."
       ~doc:"Profiling mode from a first-class scenario string (as in \
             $(b,experiments --scenario)): e.g. \
             $(b,app=SSSP,variant=grid-level,scale=700,cfg.num_smx=26).  \
             Mutually exclusive with --app.")

let interp_arg =
  let backend =
    Arg.enum
      [ ("compiled", Dpc_sim.Interp.Compiled);
        ("bytecode", Dpc_sim.Interp.Bytecode);
        ("ref", Dpc_sim.Interp.Reference) ]
  in
  Arg.(value & opt (some backend) None & info [ "interp" ] ~docv:"BACKEND"
       ~doc:"Interpreter back end for profiling runs: $(b,compiled) \
             (closure fast path, the default), $(b,bytecode) (fused \
             linear bytecode dispatch) or $(b,ref) (reference AST \
             walker).  All three produce byte-identical reports; \
             overrides $(b,DPC_INTERP).")

let profile_arg =
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE"
       ~doc:"Write a Chrome trace-event JSON of the profiled run to \
             $(docv) (open in Perfetto or chrome://tracing).  Requires \
             --app or --scenario.")

let check_arg =
  Arg.(value & flag & info [ "check" ]
       ~doc:"Static-verification mode: lint kernels instead of compiling. \
             With FILE, check that source; without, sweep every \
             registered app at every variant (basic-dp, the three \
             consolidation granularities, no-dp).  Exits non-zero on \
             error-severity findings.")

let strict_arg =
  Arg.(value & flag & info [ "strict" ]
       ~doc:"With --check: treat warnings as fatal too.")

let check_json_arg =
  Arg.(value & opt (some string) None & info [ "check-json" ] ~docv:"FILE"
       ~doc:"With --check: also write the diagnostics as JSON to $(docv).")

let mutants_arg =
  Arg.(value & flag & info [ "mutants" ]
       ~doc:"Run the verifier's mutation harness: seeded-bad kernels must \
             each be caught by the analysis that owns their bug class, \
             and their repaired twins must lint silent.")

let cmd =
  let doc = "directive-based workload-consolidation compiler for MiniCU" in
  Cmd.v
    (Cmd.info "dpcc" ~doc)
    Term.(
      const run $ input $ parent $ policy $ output $ help_pragma
      $ app_arg $ variant_arg $ scale_arg $ scenario_arg $ interp_arg
      $ profile_arg $ check_arg $ strict_arg $ check_json_arg
      $ mutants_arg)

let () = exit (Cmd.eval' cmd)
