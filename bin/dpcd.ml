(* dpcd: the sweep-serving daemon.

   Binds a Unix-domain socket, builds one warm Dpc_engine.Session (by
   default backed by the persistent on-disk program cache under
   ~/.cache/dpc) and serves dpc-serve-v1 requests until SIGINT/SIGTERM
   or a shutdown request, then drains in-flight work and exits 0.

   Usage:
     dpcd --socket /tmp/dpcd.sock
     dpcd --socket /tmp/dpcd.sock --cache-dir /var/cache/dpc
     dpcd --socket /tmp/dpcd.sock --no-persist --max-scenarios 200 \
          --timeout 30

   Talk to it with dpc-client (or any newline-delimited-JSON client;
   the protocol is documented in DESIGN.md section 10). *)

open Cmdliner

(* ~/.cache/dpc, honouring XDG_CACHE_HOME; mirrors common tool layout. *)
let default_cache_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "dpc"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" ->
      Filename.concat (Filename.concat h ".cache") "dpc"
    | _ -> Filename.concat Filename.current_dir_name ".dpc-cache")

let run socket cache_dir no_persist max_scenarios timeout strict quiet =
  let cache_dir =
    if no_persist then None
    else Some (Option.value cache_dir ~default:(default_cache_dir ()))
  in
  let cfg =
    Dpc_serve.Server.config ~cache_dir ~max_scenarios ~max_timeout_s:timeout
      ~strict_check:strict ~verbose:(not quiet) socket
  in
  match Dpc_serve.Server.create cfg with
  | exception Failure msg ->
    prerr_endline msg;
    1
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "dpcd: cannot bind %s: %s (%s %s)\n" socket
      (Unix.error_message e) fn arg;
    1
  | server ->
    Dpc_serve.Server.install_signal_handlers server;
    Dpc_serve.Server.run server;
    0

let socket =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
       ~doc:"Unix-domain socket path to listen on.  A stale socket file \
             is replaced; a live one is refused.")

let cache_dir =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
       ~doc:"Root of the persistent on-disk program cache (created if \
             absent).  Default: \\$XDG_CACHE_HOME/dpc or ~/.cache/dpc.")

let no_persist =
  Arg.(value & flag & info [ "no-persist" ]
       ~doc:"Keep the program cache in memory only (no on-disk store).")

let max_scenarios =
  Arg.(value & opt int 10_000 & info [ "max-scenarios" ] ~docv:"N"
       ~doc:"Refuse sweep requests with more than $(docv) scenarios \
             (0 = unlimited).")

let timeout =
  Arg.(value & opt float 0. & info [ "timeout" ] ~docv:"SECONDS"
       ~doc:"Cap (and default) for per-request wall-clock budgets; when \
             exceeded the request's remaining scenarios are skipped and \
             its done event reports timed_out (0 = none).  Checked \
             between scenarios: a scenario is never preempted \
             mid-simulation.")

let strict =
  Arg.(value & flag & info [ "strict"; "strict-check" ]
       ~doc:"Run every served scenario under the full strict verifier: \
             the finalize linter, transform translation validation and \
             prepare-time bytecode stream verification.  A diagnostic \
             failure becomes that scenario's structured error outcome; \
             the daemon keeps serving.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ]
       ~doc:"Suppress connection/request logging on stderr.")

let cmd =
  let doc = "serve dpc scenario sweeps from one warm session" in
  Cmd.v (Cmd.info "dpcd" ~doc)
    Term.(
      const run $ socket $ cache_dir $ no_persist $ max_scenarios $ timeout
      $ strict $ quiet)

let () = exit (Cmd.eval' cmd)
