(* Experiment runner: regenerates every table and figure of the paper's
   evaluation (Section V) on the simulated device.

   Usage:
     experiments fig5            buffer allocators on SSSP
     experiments fig6            kernel configurations on TD
     experiments fig7-10         the overall evaluation figures
     experiments summary         Section V.C average speedups
     experiments all             everything above

   Scenario mode (bypasses the figures):
     --scenario KEY=V,...   run one first-class scenario (repeatable);
                            e.g. --scenario app=SSSP,variant=grid-level,scale=700
     --sweep FILE.json      run every scenario of a JSON sweep file
     --no-cache             disable cross-run program reuse

   Machine-readable output:
     --json FILE   figures: the suite metrics snapshot (per app x variant
                   reports plus the rendered tables; see EXPERIMENTS.md);
                   scenario mode: the dpc-sweep-v1 outcome list
     --trace DIR   write a Chrome trace-event file and a per-kernel
                   profile for every suite run into DIR

   All execution goes through one Dpc_engine.Session: independent
   simulations fan out over OCaml domains (--jobs N; --jobs 1 is the
   serial path; --sched shared|steal picks the pool's dispatch
   scheduler) and runs differing only in scale/seed/allocator share
   one program build through the session's compiled-kernel cache.  The
   printed tables — and the JSON and trace files — are byte-identical
   regardless of the job count, the scheduler and the cache setting. *)

open Cmdliner
module E = Dpc_experiments
module Scenario = Dpc_engine.Scenario
module Session = Dpc_engine.Session
module M = Dpc_sim.Metrics

let suite_tables suite =
  [
    E.Figs7_10.fig7 suite;
    E.Figs7_10.fig8 suite;
    E.Figs7_10.fig9 suite;
    E.Figs7_10.fig10 suite;
    E.Figs7_10.summary suite;
  ]

let print_suite_figs suite which =
  let t =
    match which with
    | `Fig7 -> E.Figs7_10.fig7 suite
    | `Fig8 -> E.Figs7_10.fig8 suite
    | `Fig9 -> E.Figs7_10.fig9 suite
    | `Fig10 -> E.Figs7_10.fig10 suite
    | `Summary -> E.Figs7_10.summary suite
  in
  Dpc_util.Table.print t;
  print_newline ()

let needs_suite = function
  | "fig7" | "fig8" | "fig9" | "fig10" | "summary" | "all" -> true
  | _ -> false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- scenario mode -------------------------------------------------------- *)

(* Run an explicit scenario list (from --scenario flags and/or a --sweep
   file), print one table row per outcome, and optionally export the
   dpc-sweep-v1 snapshot.  Exit 1 if any scenario failed. *)
let run_scenarios session ~verbose ~json_out scenario_args sweep_file =
  let parsed = List.map Scenario.of_string scenario_args in
  let from_file =
    match sweep_file with
    | None -> []
    | Some path -> Scenario.sweep_of_json (Dpc_prof.Json.parse (read_file path))
  in
  let scs = parsed @ from_file in
  if scs = [] then begin
    prerr_endline "experiments: empty sweep (no scenarios given)";
    exit 2
  end;
  let outcomes = Session.run_all session scs in
  let t =
    Dpc_util.Table.create ~title:"Scenario sweep"
      ~headers:[ "scenario"; "cycles"; "device launches"; "warp eff" ]
      ~aligns:
        Dpc_util.Table.[ Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun (o : Session.outcome) ->
      let key = Scenario.key o.Session.scenario in
      match o.Session.result with
      | Ok r ->
        Dpc_util.Table.add_row t
          [ key;
            Printf.sprintf "%.0f" r.M.cycles;
            string_of_int r.M.device_launches;
            Dpc_util.Table.fmt_pct r.M.warp_efficiency ]
      | Error e ->
        Dpc_util.Table.add_row t
          [ key; "failed: " ^ Printexc.to_string e; "-"; "-" ])
    outcomes;
  Dpc_util.Table.print t;
  (match json_out with
  | Some path ->
    E.Export.write_file path (E.Export.sweep_json outcomes);
    if verbose then Printf.eprintf "[sweep] outcome snapshot -> %s\n%!" path
  | None -> ());
  if verbose then begin
    let s = Session.cache_stats session in
    Printf.eprintf "[sweep] program cache: %d hits, %d misses\n%!"
      s.Dpc_engine.Kcache.hits s.Dpc_engine.Kcache.misses
  end;
  if List.exists (fun o -> Result.is_error o.Session.result) outcomes then 1
  else 0

let run figures quiet scale jobs sched json_out trace_dir interp
    scenario_args sweep_file no_cache cache_dir =
  let verbose = not quiet in
  (match interp with
  | Some m -> Dpc_sim.Interp.set_default_mode m
  | None -> ());
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  (* One session for everything this invocation runs: figures and
     scenario sweeps share its pool and compiled-kernel cache. *)
  let session =
    Session.create ~jobs ~sched ~verbose ~cache:(not no_cache)
      ?persist:cache_dir ()
  in
  if scenario_args <> [] || sweep_file <> None then (
    try run_scenarios session ~verbose ~json_out scenario_args sweep_file
    with Invalid_argument msg | Failure msg ->
      Printf.eprintf "experiments: %s\n" msg;
      2)
  else begin
    let figures = if figures = [] then [ "all" ] else figures in
    (* The JSON snapshot and the trace files read the same shared run
       collection as figs 7-10, so asking for either forces it.  A trace
       capture needs its own session (the artifact hook is fixed at
       session creation), so only the untraced path reuses the shared
       one. *)
    let suite =
      if
        List.exists needs_suite figures
        || json_out <> None || trace_dir <> None
      then
        Some
          (E.Suite.collect ~verbose ?scale ~jobs ~sched ?trace_dir
             ?session:(if trace_dir = None then Some session else None)
             ())
      else None
    in
    let get_suite () = Option.get suite in
    List.iter
      (fun f ->
        match String.lowercase_ascii f with
        | "fig5" -> E.Fig5_allocators.print ~verbose ?scale ~session ()
        | "fig6" -> E.Fig6_config.print ~verbose ?scale ~session ()
        | "fig7" -> print_suite_figs (get_suite ()) `Fig7
        | "fig8" -> print_suite_figs (get_suite ()) `Fig8
        | "fig9" -> print_suite_figs (get_suite ()) `Fig9
        | "fig10" -> print_suite_figs (get_suite ()) `Fig10
        | "summary" -> print_suite_figs (get_suite ()) `Summary
        | "all" ->
          let s = get_suite () in
          print_suite_figs s `Fig7;
          print_suite_figs s `Fig8;
          print_suite_figs s `Fig9;
          print_suite_figs s `Fig10;
          print_suite_figs s `Summary;
          E.Fig5_allocators.print ~verbose ?scale ~session ();
          print_newline ();
          E.Fig6_config.print ~verbose ?scale ~session ()
        | other ->
          Printf.eprintf
            "unknown figure %S (fig5 fig6 fig7 fig8 fig9 fig10 summary all)\n"
            other;
          exit 2)
      figures;
    (match json_out with
    | Some path ->
      let s = get_suite () in
      E.Export.write_file path
        (E.Export.suite_json ?scale s ~tables:(suite_tables s));
      if verbose then
        Printf.eprintf "[suite] metrics snapshot -> %s\n%!" path
    | None -> ());
    (match trace_dir with
    | Some dir when verbose ->
      Printf.eprintf "[suite] per-run traces and profiles -> %s/\n%!" dir
    | _ -> ());
    0
  end

let figures =
  Arg.(value & pos_all string [] & info [] ~docv:"FIGURE"
       ~doc:"Which figures to regenerate (fig5, fig6, fig7, fig8, fig9, \
             fig10, summary, all).")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress logging.")

let scale =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N"
       ~doc:"Override each app's problem size (interpreted per app: node \
             count, log2 node count, or tree shrink divisor).")

let jobs =
  Arg.(value & opt int (Dpc_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
       ~doc:"Run up to $(docv) independent simulations concurrently on \
             OCaml domains (default: cores - 1; 1 = serial).  Output \
             tables are byte-identical for any value.")

let pool_sched =
  let s =
    Arg.enum
      [ ("shared", Dpc_util.Pool.Shared); ("steal", Dpc_util.Pool.Steal) ]
  in
  Arg.(value & opt s Dpc_util.Pool.Shared & info [ "sched" ] ~docv:"SCHED"
       ~doc:"Batch dispatch scheduler: $(b,shared) (one atomic counter, \
             submission order — the default) or $(b,steal) (per-worker \
             deques seeded longest-first by the scenario cost estimate, \
             idle workers steal).  Tables, JSON and traces are \
             byte-identical either way; only wall-clock scheduling \
             differs.")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Write the metrics snapshot as JSON to $(docv): the suite \
             snapshot for figures, the dpc-sweep-v1 outcome list in \
             scenario mode.")

let trace_dir =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"DIR"
       ~doc:"Profile every suite run and write Chrome trace-event files \
             (*.trace.json, for Perfetto/chrome://tracing) and per-kernel \
             profiles (*.profile.json) into $(docv).")

let interp =
  let backend =
    Arg.enum
      [ ("compiled", Dpc_sim.Interp.Compiled);
        ("bytecode", Dpc_sim.Interp.Bytecode);
        ("ref", Dpc_sim.Interp.Reference) ]
  in
  Arg.(value & opt (some backend) None & info [ "interp" ] ~docv:"BACKEND"
       ~doc:"Interpreter back end: $(b,compiled) (closure fast path, the \
             default), $(b,bytecode) (fused linear bytecode dispatch) or \
             $(b,ref) (reference AST walker).  All three emit \
             byte-identical metrics; overrides $(b,DPC_INTERP).")

let scenario_args =
  Arg.(value & opt_all string [] & info [ "scenario" ] ~docv:"KEY=V,..."
       ~doc:"Run one first-class scenario instead of a figure \
             (repeatable).  Keys: app, variant, policy, alloc, cfg, \
             cfg.FIELD, scale, seed, sched, interp, x.KEY; e.g. \
             $(b,app=SSSP,variant=grid-level,scale=700).")

let sweep_file =
  Arg.(value & opt (some file) None & info [ "sweep" ] ~docv:"FILE"
       ~doc:"Run every scenario of a JSON sweep file: a list (or a \
             {\"scenarios\": [...]} object) of scenario objects or \
             canonical scenario strings.")

let no_cache =
  Arg.(value & flag & info [ "no-cache" ]
       ~doc:"Disable the session's cross-run compiled-kernel cache: \
             every run parses, transforms and finalizes its programs \
             from scratch.  Results are identical either way.")

let cache_dir =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
       ~doc:"Back the compiled-kernel cache with the persistent on-disk \
             store rooted at $(docv) (created if absent): prepared \
             programs survive across invocations, so cold processes \
             start warm.  Results are identical either way.  Ignored \
             with $(b,--no-cache).")

let cmd =
  let doc = "regenerate the paper's evaluation tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(
      const run $ figures $ quiet $ scale $ jobs $ pool_sched $ json_out
      $ trace_dir $ interp $ scenario_args $ sweep_file $ no_cache
      $ cache_dir)

let () = exit (Cmd.eval' cmd)
