(* Experiment runner: regenerates every table and figure of the paper's
   evaluation (Section V) on the simulated device.

   Usage:
     experiments fig5            buffer allocators on SSSP
     experiments fig6            kernel configurations on TD
     experiments fig7-10         the overall evaluation figures
     experiments summary         Section V.C average speedups
     experiments all             everything above

   Machine-readable output:
     --json FILE   write the suite metrics snapshot (per app x variant
                   reports plus the rendered tables; see EXPERIMENTS.md)
     --trace DIR   write a Chrome trace-event file and a per-kernel
                   profile for every suite run into DIR

   Every simulation in a sweep is independent, so the runner fans them
   out over OCaml domains (--jobs N; --jobs 1 is the serial path).  The
   printed tables — and the JSON and trace files — are byte-identical
   regardless of the job count. *)

open Cmdliner
module E = Dpc_experiments

let suite_tables suite =
  [
    E.Figs7_10.fig7 suite;
    E.Figs7_10.fig8 suite;
    E.Figs7_10.fig9 suite;
    E.Figs7_10.fig10 suite;
    E.Figs7_10.summary suite;
  ]

let print_suite_figs suite which =
  let t =
    match which with
    | `Fig7 -> E.Figs7_10.fig7 suite
    | `Fig8 -> E.Figs7_10.fig8 suite
    | `Fig9 -> E.Figs7_10.fig9 suite
    | `Fig10 -> E.Figs7_10.fig10 suite
    | `Summary -> E.Figs7_10.summary suite
  in
  Dpc_util.Table.print t;
  print_newline ()

let needs_suite = function
  | "fig7" | "fig8" | "fig9" | "fig10" | "summary" | "all" -> true
  | _ -> false

let run figures quiet scale jobs json_out trace_dir interp =
  let verbose = not quiet in
  (match interp with
  | Some m -> Dpc_sim.Interp.set_default_mode m
  | None -> ());
  if jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  let figures = if figures = [] then [ "all" ] else figures in
  (* The JSON snapshot and the trace files read the same shared run
     collection as figs 7-10, so asking for either forces it. *)
  let suite =
    if
      List.exists needs_suite figures
      || json_out <> None || trace_dir <> None
    then
      Some (E.Suite.collect ~verbose ?scale ~jobs ?trace_dir ())
    else None
  in
  let get_suite () = Option.get suite in
  List.iter
    (fun f ->
      match String.lowercase_ascii f with
      | "fig5" -> E.Fig5_allocators.print ~verbose ?scale ~jobs ()
      | "fig6" -> E.Fig6_config.print ~verbose ?scale ~jobs ()
      | "fig7" -> print_suite_figs (get_suite ()) `Fig7
      | "fig8" -> print_suite_figs (get_suite ()) `Fig8
      | "fig9" -> print_suite_figs (get_suite ()) `Fig9
      | "fig10" -> print_suite_figs (get_suite ()) `Fig10
      | "summary" -> print_suite_figs (get_suite ()) `Summary
      | "all" ->
        let s = get_suite () in
        print_suite_figs s `Fig7;
        print_suite_figs s `Fig8;
        print_suite_figs s `Fig9;
        print_suite_figs s `Fig10;
        print_suite_figs s `Summary;
        E.Fig5_allocators.print ~verbose ?scale ~jobs ();
        print_newline ();
        E.Fig6_config.print ~verbose ?scale ~jobs ()
      | other ->
        Printf.eprintf
          "unknown figure %S (fig5 fig6 fig7 fig8 fig9 fig10 summary all)\n"
          other;
        exit 2)
    figures;
  (match json_out with
  | Some path ->
    let s = get_suite () in
    E.Export.write_file path
      (E.Export.suite_json ?scale s ~tables:(suite_tables s));
    if verbose then Printf.eprintf "[suite] metrics snapshot -> %s\n%!" path
  | None -> ());
  (match trace_dir with
  | Some dir when verbose ->
    Printf.eprintf "[suite] per-run traces and profiles -> %s/\n%!" dir
  | _ -> ());
  0

let figures =
  Arg.(value & pos_all string [] & info [] ~docv:"FIGURE"
       ~doc:"Which figures to regenerate (fig5, fig6, fig7, fig8, fig9, \
             fig10, summary, all).")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress logging.")

let scale =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N"
       ~doc:"Override each app's problem size (interpreted per app: node \
             count, log2 node count, or tree shrink divisor).")

let jobs =
  Arg.(value & opt int (Dpc_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
       ~doc:"Run up to $(docv) independent simulations concurrently on \
             OCaml domains (default: cores - 1; 1 = serial).  Output \
             tables are byte-identical for any value.")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Write the suite metrics snapshot (per app x variant reports \
             plus the rendered figure tables) as JSON to $(docv).")

let trace_dir =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"DIR"
       ~doc:"Profile every suite run and write Chrome trace-event files \
             (*.trace.json, for Perfetto/chrome://tracing) and per-kernel \
             profiles (*.profile.json) into $(docv).")

let interp =
  let backend =
    Arg.enum
      [ ("compiled", Dpc_sim.Interp.Compiled);
        ("ref", Dpc_sim.Interp.Reference) ]
  in
  Arg.(value & opt (some backend) None & info [ "interp" ] ~docv:"BACKEND"
       ~doc:"Interpreter back end: $(b,compiled) (closure fast path, the \
             default) or $(b,ref) (reference AST walker).  Both emit \
             byte-identical metrics; overrides $(b,DPC_INTERP).")

let cmd =
  let doc = "regenerate the paper's evaluation tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(
      const run $ figures $ quiet $ scale $ jobs $ json_out $ trace_dir
      $ interp)

let () = exit (Cmd.eval' cmd)
