#!/usr/bin/env python3
"""Regression guard for the experiments metrics snapshot.

Compares a freshly generated `experiments --json` snapshot against the
committed baseline (ci/experiments_baseline.json):

  default   structural check: same apps, variants, tables, and the same
            key set with the same JSON types at every level.  Robust to
            cost-model retuning (values may drift; shape may not).
  --exact   byte-level value check on top of the schema check: every
            leaf must be equal.  Used in CI to diff the compiled
            interpreter back end against the reference walker, where
            the tentpole invariant is byte-identical metrics.
  --ignore KEY
            skip a key (anywhere in the tree) in both documents, for
            members that legitimately differ between producers — e.g.
            the "source" tag when diffing a dpc-client snapshot against
            an `experiments --sweep` one.  Repeatable.
  --require-zero KEY
            additionally assert that every occurrence of KEY in the
            fresh document is exactly 0.  Used to pin the deep
            memory-model counters (bank_conflict_replays, mshr_stalls)
            to zero on the features-off default preset, so default
            exports stay byte-identical to pre-deep-model releases.
            Repeatable.

Exit code 0 on success, 1 with a path-qualified report on mismatch.
"""

import argparse
import json
import sys


def walk(base, fresh, path, errors, exact, ignore):
    if type(base) is not type(fresh):
        errors.append(
            f"{path}: type {type(base).__name__} -> {type(fresh).__name__}")
        return
    if isinstance(base, dict):
        bkeys = set(base) - ignore
        fkeys = set(fresh) - ignore
        missing = sorted(bkeys - fkeys)
        added = sorted(fkeys - bkeys)
        if missing:
            errors.append(f"{path}: missing keys {missing}")
        if added:
            errors.append(f"{path}: unexpected keys {added}")
        for k in sorted(bkeys & fkeys):
            walk(base[k], fresh[k], f"{path}.{k}", errors, exact, ignore)
    elif isinstance(base, list):
        if len(base) != len(fresh):
            errors.append(f"{path}: length {len(base)} -> {len(fresh)}")
        for i, (b, f) in enumerate(zip(base, fresh)):
            walk(b, f, f"{path}[{i}]", errors, exact, ignore)
    elif exact and base != fresh:
        errors.append(f"{path}: value {base!r} -> {fresh!r}")


def check_zeros(doc, path, errors, keys):
    if isinstance(doc, dict):
        for k, v in doc.items():
            if k in keys and v != 0:
                errors.append(f"{path}.{k}: expected 0, got {v!r}")
            check_zeros(v, f"{path}.{k}", errors, keys)
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            check_zeros(v, f"{path}[{i}]", errors, keys)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--exact", action="store_true",
                    help="require equal leaf values, not just equal shape")
    ap.add_argument("--ignore", action="append", default=[], metavar="KEY",
                    help="skip this object key anywhere in both documents "
                         "(repeatable)")
    ap.add_argument("--require-zero", action="append", default=[],
                    metavar="KEY",
                    help="every occurrence of KEY in the fresh document "
                         "must be exactly 0 (repeatable)")
    args = ap.parse_args()

    with open(args.baseline) as fh:
        base = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    errors = []
    walk(base, fresh, "$", errors, args.exact, frozenset(args.ignore))
    if args.require_zero:
        check_zeros(fresh, "$", errors, frozenset(args.require_zero))
    if errors:
        kind = "exact" if args.exact else "schema"
        print(f"metrics {kind} check FAILED ({len(errors)} mismatches):")
        for e in errors[:50]:
            print("  " + e)
        if len(errors) > 50:
            print(f"  ... and {len(errors) - 50} more")
        sys.exit(1)
    print(f"metrics {'exact' if args.exact else 'schema'} check OK "
          f"({args.fresh} vs {args.baseline})")


if __name__ == "__main__":
    main()
